//! Routing algorithms.
//!
//! The paper uses deterministic dimension-ordered (XY) routing on the mesh,
//! provided here by [`XyRouting`]. The [`RoutingAlgorithm`] trait keeps the
//! router generic so that other deterministic algorithms (e.g. YX or
//! table-based routing) can be plugged in for ablation studies.
//!
//! # Torus routing and datelines
//!
//! On a [`Topology::torus`] the dimension-ordered algorithms take the
//! shortest way around each ring (ties broken towards East/South), which
//! closes a channel-dependency cycle inside every ring. Deadlock freedom is
//! restored with the classic *dateline* discipline (Dally & Seitz): each ring
//! places its dateline on the wrap-around link, packets start in virtual
//! channel class 0 and switch to class 1 once they cross the dateline of the
//! ring they are currently traversing. [`RoutingAlgorithm::next_vc_class`]
//! reports the class a packet must use downstream of its next hop; the router
//! restricts VC allocation to that class (see
//! [`Router`](crate::router::Router)). On a mesh the class is always 0 and no
//! restriction applies.

use crate::topology::{Direction, Topology};
use std::fmt::Debug;

/// A deterministic routing function: which output port should a packet
/// residing at `current` take to reach `dst`?
pub trait RoutingAlgorithm: Debug + Send + Sync {
    /// Returns the output port to take at router `current` for a packet whose
    /// destination is `dst`. Returns [`Direction::Local`] when
    /// `current == dst`.
    fn route(&self, topo: &Topology, current: usize, dst: usize) -> Direction;

    /// The dateline virtual-channel class (0 or 1) the packet must use on the
    /// link chosen by [`route`](Self::route) at `current`.
    ///
    /// `src` is the packet's source (head flits carry it), which determines
    /// where the packet entered the ring it is currently traversing. The
    /// default implementation returns 0, which is correct for any topology
    /// without wrap-around links.
    fn next_vc_class(&self, topo: &Topology, src: usize, current: usize, dst: usize) -> u8 {
        let _ = (topo, src, current, dst);
        0
    }

    /// The number of hops the algorithm takes from `src` to `dst`
    /// (used by tests and by zero-load latency estimates).
    fn path_length(&self, topo: &Topology, src: usize, dst: usize) -> usize {
        let mut hops = 0;
        let mut at = src;
        // Loop detector: a deterministic route that revisits a node repeats
        // forever, so `node_count` hops already imply a loop. The bound is
        // deliberately looser — wrap-around routes and future non-minimal
        // algorithms (Valiant-style detours traverse up to two full paths)
        // must not trip it.
        let bound = 2 * topo.node_count() + 2 * (topo.width() + topo.height());
        while at != dst {
            let dir = self.route(topo, at, dst);
            at = topo.neighbor(at, dir).expect("routing function must not route off the topology");
            hops += 1;
            assert!(hops <= bound, "routing loop detected");
        }
        hops
    }
}

/// The travel direction along one ring dimension: positive means increasing
/// coordinate (East/South).
///
/// `k` is the ring size, `c` the current coordinate, `d` the destination
/// coordinate (`c != d`). On a torus the shorter way around wins, with ties
/// broken towards positive; on a mesh wrap-around is not available so the
/// sign of `d - c` decides.
fn ring_positive(torus: bool, k: usize, c: usize, d: usize) -> bool {
    if !torus {
        return c < d;
    }
    let dpos = (d + k - c) % k;
    dpos <= k - dpos
}

/// Dateline class after the next hop along one torus ring.
///
/// `s` is the coordinate at which the packet entered this ring (its source
/// coordinate under dimension-ordered routing), `c` its current coordinate,
/// `d` its destination coordinate (`c != d`). The dateline sits on the
/// wrap-around link; a packet is in class 1 once its path from `s` has used
/// that link. Minimal ring routes keep a constant travel direction, so the
/// direction can be derived from `s` and matches [`ring_positive`] at every
/// intermediate hop.
fn ring_class_after_hop(k: usize, s: usize, c: usize, d: usize) -> u8 {
    let positive = ring_positive(true, k, s, d);
    if positive {
        let next = (c + 1) % k;
        u8::from(next < s)
    } else {
        let next = (c + k - 1) % k;
        u8::from(next > s)
    }
}

/// Dimension-ordered routing: correct the X coordinate first, then Y.
///
/// XY routing on a mesh is minimal and deadlock-free, which is why it is the
/// default in Booksim and in the paper. On a torus it takes the shortest way
/// around each ring and relies on the dateline VC discipline (see the module
/// docs) for deadlock freedom.
///
/// ```
/// use noc_sim::{Topology, XyRouting, RoutingAlgorithm, Direction};
///
/// let mesh = Topology::mesh(5, 5);
/// let routing = XyRouting::new();
/// // From node 0 (0,0) to node 24 (4,4) the first moves go east.
/// assert_eq!(routing.route(&mesh, 0, 24), Direction::East);
/// // On the torus the same pair is one wrap hop west, then one north.
/// let torus = Topology::torus(5, 5);
/// assert_eq!(routing.route(&torus, 0, 24), Direction::West);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct XyRouting {
    _private: (),
}

impl XyRouting {
    /// Creates the XY routing function.
    pub fn new() -> Self {
        XyRouting { _private: () }
    }
}

impl RoutingAlgorithm for XyRouting {
    fn route(&self, topo: &Topology, current: usize, dst: usize) -> Direction {
        let (cx, cy) = topo.coords(current);
        let (dx, dy) = topo.coords(dst);
        let torus = topo.is_torus();
        if cx != dx {
            if ring_positive(torus, topo.width(), cx, dx) {
                Direction::East
            } else {
                Direction::West
            }
        } else if cy != dy {
            if ring_positive(torus, topo.height(), cy, dy) {
                Direction::South
            } else {
                Direction::North
            }
        } else {
            Direction::Local
        }
    }

    fn next_vc_class(&self, topo: &Topology, src: usize, current: usize, dst: usize) -> u8 {
        if !topo.is_torus() {
            return 0;
        }
        let (cx, cy) = topo.coords(current);
        let (sx, sy) = topo.coords(src);
        let (dx, dy) = topo.coords(dst);
        if cx != dx {
            ring_class_after_hop(topo.width(), sx, cx, dx)
        } else if cy != dy {
            ring_class_after_hop(topo.height(), sy, cy, dy)
        } else {
            0
        }
    }
}

/// Dimension-ordered routing that corrects Y first, then X.
///
/// Not used by the paper's experiments, but handy for checking that the
/// policy-level conclusions do not depend on the routing order (ablation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct YxRouting {
    _private: (),
}

impl YxRouting {
    /// Creates the YX routing function.
    pub fn new() -> Self {
        YxRouting { _private: () }
    }
}

impl RoutingAlgorithm for YxRouting {
    fn route(&self, topo: &Topology, current: usize, dst: usize) -> Direction {
        let (cx, cy) = topo.coords(current);
        let (dx, dy) = topo.coords(dst);
        let torus = topo.is_torus();
        if cy != dy {
            if ring_positive(torus, topo.height(), cy, dy) {
                Direction::South
            } else {
                Direction::North
            }
        } else if cx != dx {
            if ring_positive(torus, topo.width(), cx, dx) {
                Direction::East
            } else {
                Direction::West
            }
        } else {
            Direction::Local
        }
    }

    fn next_vc_class(&self, topo: &Topology, src: usize, current: usize, dst: usize) -> u8 {
        if !topo.is_torus() {
            return 0;
        }
        let (cx, cy) = topo.coords(current);
        let (sx, sy) = topo.coords(src);
        let (dx, dy) = topo.coords(dst);
        if cy != dy {
            ring_class_after_hop(topo.height(), sy, cy, dy)
        } else if cx != dx {
            ring_class_after_hop(topo.width(), sx, cx, dx)
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Mesh2d;

    #[test]
    fn xy_reaches_destination_with_minimal_hops() {
        let mesh = Mesh2d::new(5, 5);
        let routing = XyRouting::new();
        for src in 0..mesh.node_count() {
            for dst in 0..mesh.node_count() {
                assert_eq!(routing.path_length(&mesh, src, dst), mesh.hop_distance(src, dst));
            }
        }
    }

    #[test]
    fn yx_reaches_destination_with_minimal_hops() {
        let mesh = Mesh2d::new(4, 6);
        let routing = YxRouting::new();
        for src in 0..mesh.node_count() {
            for dst in 0..mesh.node_count() {
                assert_eq!(routing.path_length(&mesh, src, dst), mesh.hop_distance(src, dst));
            }
        }
    }

    #[test]
    fn xy_corrects_x_before_y() {
        let mesh = Mesh2d::new(5, 5);
        let routing = XyRouting::new();
        let src = mesh.node_at(0, 0);
        let dst = mesh.node_at(3, 3);
        assert_eq!(routing.route(&mesh, src, dst), Direction::East);
        let mid = mesh.node_at(3, 0);
        assert_eq!(routing.route(&mesh, mid, dst), Direction::South);
    }

    #[test]
    fn yx_corrects_y_before_x() {
        let mesh = Mesh2d::new(5, 5);
        let routing = YxRouting::new();
        let src = mesh.node_at(0, 0);
        let dst = mesh.node_at(3, 3);
        assert_eq!(routing.route(&mesh, src, dst), Direction::South);
    }

    #[test]
    fn destination_routes_to_local_port() {
        for topo in [Topology::mesh(4, 4), Topology::torus(4, 4)] {
            let routing = XyRouting::new();
            for node in 0..topo.node_count() {
                assert_eq!(routing.route(&topo, node, node), Direction::Local);
            }
        }
    }

    #[test]
    fn xy_route_never_leaves_mesh() {
        let mesh = Mesh2d::new(8, 8);
        let routing = XyRouting::new();
        for src in 0..mesh.node_count() {
            for dst in 0..mesh.node_count() {
                if src == dst {
                    continue;
                }
                let dir = routing.route(&mesh, src, dst);
                assert!(mesh.neighbor(src, dir).is_some(), "route must point at a real neighbor");
            }
        }
    }

    #[test]
    fn torus_routes_are_minimal_for_both_orders() {
        for topo in [Topology::torus(5, 5), Topology::torus(4, 6)] {
            for src in 0..topo.node_count() {
                for dst in 0..topo.node_count() {
                    assert_eq!(
                        XyRouting::new().path_length(&topo, src, dst),
                        topo.hop_distance(src, dst),
                        "xy {topo}: {src} -> {dst}"
                    );
                    assert_eq!(
                        YxRouting::new().path_length(&topo, src, dst),
                        topo.hop_distance(src, dst),
                        "yx {topo}: {src} -> {dst}"
                    );
                }
            }
        }
    }

    #[test]
    fn torus_prefers_the_wrap_link_when_shorter() {
        let t = Topology::torus(5, 5);
        let routing = XyRouting::new();
        // (0,0) -> (4,0): one hop west through the wrap link, not four east.
        assert_eq!(routing.route(&t, t.node_at(0, 0), t.node_at(4, 0)), Direction::West);
        // (0,0) -> (3,0): two hops west around the ring.
        assert_eq!(routing.route(&t, t.node_at(0, 0), t.node_at(3, 0)), Direction::West);
        // (0,0) -> (2,0): two hops east, no wrap.
        assert_eq!(routing.route(&t, t.node_at(0, 0), t.node_at(2, 0)), Direction::East);
    }

    #[test]
    fn even_ring_ties_break_towards_east_and_south() {
        let t = Topology::torus(4, 4);
        let routing = XyRouting::new();
        // Distance 2 both ways on a 4-ring: East wins.
        assert_eq!(routing.route(&t, t.node_at(0, 0), t.node_at(2, 0)), Direction::East);
        assert_eq!(routing.route(&t, t.node_at(0, 0), t.node_at(0, 2)), Direction::South);
    }

    #[test]
    fn vc_class_flips_after_the_dateline() {
        let t = Topology::torus(5, 5);
        let routing = XyRouting::new();
        let src = t.node_at(4, 0);
        let dst = t.node_at(1, 0);
        // Route goes East through the wrap link 4 -> 0 -> 1.
        assert_eq!(routing.route(&t, src, dst), Direction::East);
        // The very first hop crosses the dateline: downstream class is 1.
        assert_eq!(routing.next_vc_class(&t, src, src, dst), 1);
        // After the crossing the packet stays in class 1.
        assert_eq!(routing.next_vc_class(&t, src, t.node_at(0, 0), dst), 1);
        // A route that never wraps stays in class 0 throughout.
        let src2 = t.node_at(0, 0);
        let dst2 = t.node_at(2, 0);
        assert_eq!(routing.next_vc_class(&t, src2, src2, dst2), 0);
        assert_eq!(routing.next_vc_class(&t, src2, t.node_at(1, 0), dst2), 0);
    }

    #[test]
    fn vc_class_resets_when_switching_dimension() {
        let t = Topology::torus(5, 5);
        let routing = XyRouting::new();
        // X leg wraps (class 1), the subsequent Y leg does not: the class
        // must fall back to 0 when the packet enters the fresh ring.
        let src = t.node_at(4, 0);
        let dst = t.node_at(0, 2);
        let after_x = t.node_at(0, 0);
        assert_eq!(routing.next_vc_class(&t, src, src, dst), 1);
        assert_eq!(routing.route(&t, after_x, dst), Direction::South);
        assert_eq!(routing.next_vc_class(&t, src, after_x, dst), 0);
    }

    #[test]
    fn mesh_vc_class_is_always_zero() {
        let mesh = Mesh2d::new(4, 4);
        for routing in [&XyRouting::new() as &dyn RoutingAlgorithm, &YxRouting::new()] {
            for src in 0..mesh.node_count() {
                for dst in 0..mesh.node_count() {
                    assert_eq!(routing.next_vc_class(&mesh, src, src, dst), 0);
                }
            }
        }
    }

    #[test]
    fn path_length_bound_admits_full_torus_wrap_routes() {
        // Regression for the loop-detector bound: the longest minimal torus
        // routes (half-way around both rings) and every mesh route must stay
        // clearly inside it — `path_length` must never panic on a legal route.
        for topo in [Topology::torus(8, 8), Topology::torus(2, 8), Topology::mesh(8, 8)] {
            let bound = 2 * topo.node_count() + 2 * (topo.width() + topo.height());
            for src in 0..topo.node_count() {
                for dst in 0..topo.node_count() {
                    let hops = XyRouting::new().path_length(&topo, src, dst);
                    assert!(hops <= bound, "{topo}: {src}->{dst} took {hops} hops");
                }
            }
        }
    }
}
