//! Crash-tolerant sweep coordination: shard a grid into per-point work
//! units, journal every completed point, and survive worker panics, hangs
//! and process kills without losing (or recomputing) finished work.
//!
//! The experiment layer's sweeps ([`crate::sweep`], [`crate::scenario`]) are
//! embarrassingly parallel but fragile as a *process*: a panic in one
//! operating point, a wedged simulation, or an external kill throws away
//! every point computed so far. This module adds the missing fabric:
//!
//! * **Sharding** — [`shard_policy_grid`] flattens a `(policy × load)` grid
//!   into [`WorkUnit`]s with deterministic string keys, so a point's
//!   identity is stable across runs and processes.
//! * **Journaling** — every completed point is appended to a results
//!   journal (JSON lines, one object per line) through an atomic
//!   write-temp-then-rename, so the file on disk is *always* a valid
//!   prefix of the sweep: a kill mid-write cannot corrupt finished work.
//! * **Resume** — [`run_sweep`] reloads the journal on start and re-runs
//!   only the missing points. Long points can warm-start from their latest
//!   mid-run checkpoint ([`PointContext::save_checkpoint`] /
//!   [`PointContext::load_checkpoint`]), which is bit-identity-safe when
//!   the checkpoint bytes come from [`noc_sim`]'s snapshot subsystem.
//! * **Self-healing** — each attempt runs on its own thread behind a
//!   watchdog timeout; a panicked, erroring or stuck point is retried with
//!   bounded exponential backoff while the rest of the grid completes.
//! * **Chaos testing** — [`ChaosConfig`] deterministically kills worker
//!   attempts mid-point (at a [`PointContext::checkpoint_tick`] call), so a
//!   test can prove the sweep converges to the bit-identical uninterrupted
//!   result under fire.
//!
//! Results travel through the journal as caller-encoded strings (see
//! [`encode_operating_point`]); "bit-identical" for a resumed or
//! chaos-ridden sweep therefore means *string equality* of the merged
//! artifact, with floats encoded via their exact bit patterns.

use crate::closed_loop::OperatingPointResult;
use crate::parallel::worker_threads;
use crate::policy::PolicyKind;
use noc_sim::telemetry::{TelemetryEvent, TraceEmitter};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// One schedulable point of a sweep grid.
#[derive(Debug, Clone)]
pub struct WorkUnit {
    /// Deterministic identity of the point — the journal key. Stable across
    /// runs and processes for the same grid.
    pub key: String,
    /// The DVFS policy of this point.
    pub policy: PolicyKind,
    /// The load parameter of this point.
    pub load: f64,
    /// The simulation seed of this point.
    pub seed: u64,
}

impl WorkUnit {
    /// Builds a unit with the canonical key
    /// `"<prefix>/<policy>@<load-bits>#<seed>"`. The load enters the key as
    /// its exact bit pattern, so two grid points differing in the last ulp
    /// still get distinct keys.
    pub fn new(prefix: &str, policy: PolicyKind, load: f64, seed: u64) -> Self {
        let key = format!("{prefix}/{}@{:016x}#{seed}", policy.name(), load.to_bits());
        WorkUnit { key, policy, load, seed }
    }
}

/// Flattens a `(policy × load)` grid into work units in policy-major order —
/// the same order [`crate::sweep::sweep_policies`] computes points in.
pub fn shard_policy_grid(
    prefix: &str,
    policies: &[PolicyKind],
    loads: &[f64],
    seed: u64,
) -> Vec<WorkUnit> {
    policies
        .iter()
        .flat_map(|p| loads.iter().map(move |&load| WorkUnit::new(prefix, p.clone(), load, seed)))
        .collect()
}

/// Deterministic chaos injection: kill a fraction of worker attempts
/// mid-point to exercise the retry/resume fabric.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Probability (0..=1) that any given attempt is killed. Kills are a
    /// deterministic function of `(key, attempt, seed)`, and the final
    /// permitted attempt of a point is never killed, so a chaos sweep
    /// always converges.
    pub kill_probability: f64,
    /// Seed of the kill pattern.
    pub seed: u64,
}

/// Tuning of the self-healing executor.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Per-attempt watchdog: an attempt that neither finishes nor fails
    /// within this budget is declared stuck and retried. (The stuck thread
    /// is abandoned; its checkpoint writes remain atomic, so a later retry
    /// still only ever sees complete checkpoints.)
    pub watchdog: Duration,
    /// Retries after the first attempt (`2` means up to three attempts).
    pub max_retries: u32,
    /// First retry delay; doubles per retry.
    pub backoff_base: Duration,
    /// Upper bound on the retry delay.
    pub backoff_cap: Duration,
    /// Worker threads (`None`: [`worker_threads`]).
    pub workers: Option<usize>,
    /// Chaos test mode, off by default.
    pub chaos: Option<ChaosConfig>,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            watchdog: Duration::from_secs(300),
            max_retries: 3,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(5),
            workers: None,
            chaos: None,
        }
    }
}

impl CoordinatorConfig {
    /// A configuration suitable for tests: short watchdog, near-zero
    /// backoff.
    pub fn quick() -> Self {
        CoordinatorConfig {
            watchdog: Duration::from_secs(30),
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(8),
            ..CoordinatorConfig::default()
        }
    }

    /// The same configuration with chaos mode enabled.
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = Some(chaos);
        self
    }
}

/// Why a point ultimately failed (after exhausting its retries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointFailure {
    /// The journal key of the failed point.
    pub key: String,
    /// Attempts performed (first try + retries).
    pub attempts: u32,
    /// The last attempt's error: a runner error message, a rendered panic
    /// payload, or `"watchdog timeout"`.
    pub last_error: String,
}

/// The per-attempt context handed to a point runner: checkpoint storage and
/// the chaos kill hook.
#[derive(Debug)]
pub struct PointContext {
    checkpoint_path: PathBuf,
    /// Chaos: panic when `ticks` reaches this value (`None`: never).
    kill_at_tick: Option<u64>,
    ticks: u64,
}

impl PointContext {
    /// The latest complete checkpoint saved by a previous attempt of this
    /// point, if any — warm-start material for a long point. Checkpoint
    /// writes are atomic, so this is never a torn file.
    pub fn load_checkpoint(&self) -> Option<Vec<u8>> {
        std::fs::read(&self.checkpoint_path).ok()
    }

    /// Atomically replaces this point's checkpoint (write temp, rename).
    /// Also counts as a [`checkpoint_tick`](Self::checkpoint_tick).
    pub fn save_checkpoint(&mut self, bytes: &[u8]) {
        // Best-effort: a failed checkpoint write only costs warm-start
        // potential, never correctness — the journal is the source of truth.
        let _ = write_atomic(&self.checkpoint_path, bytes);
        self.checkpoint_tick();
    }

    /// The chaos kill point: under [`ChaosConfig`], a condemned attempt
    /// panics at a deterministic tick. Runners that want to be killable
    /// mid-point (rather than only at the end) call this between work
    /// chunks; [`save_checkpoint`](Self::save_checkpoint) calls it
    /// implicitly so checkpointing runners are killable for free.
    ///
    /// # Panics
    ///
    /// Panics when this attempt's chaos kill is due — that is the feature.
    pub fn checkpoint_tick(&mut self) {
        self.ticks += 1;
        if self.kill_at_tick.is_some_and(|at| self.ticks >= at) {
            // Disarm first so a panic-handler re-entry cannot double-kill.
            self.kill_at_tick = None;
            panic!("chaos kill (tick {})", self.ticks);
        }
    }
}

/// A point runner: computes one work unit into its journal-encoded result
/// string, with access to checkpoint storage. Must be a pure function of
/// the unit (plus its own captured configuration) so retries and resumed
/// runs reproduce identical results.
pub type PointRunner =
    dyn Fn(&WorkUnit, &mut PointContext) -> Result<String, String> + Send + Sync;

/// Outcome of a coordinated sweep.
#[derive(Debug)]
pub struct SweepReport {
    /// `(key, encoded result)` for every unit, in input order, for units
    /// that completed (this run or a previous one).
    pub results: Vec<(String, String)>,
    /// Points that exhausted their retries — the grid completed around
    /// them; re-running the same sweep retries exactly these.
    pub failures: Vec<PointFailure>,
    /// Units satisfied from the journal without running.
    pub resumed: usize,
    /// Attempts beyond the first, summed over all points.
    pub retries: u64,
    /// Progress / fault counters of this run (also written to
    /// `<journal>.profile.json` next to the results journal).
    pub profile: SweepProfile,
    /// Per-point execution trace (start / retry / complete events,
    /// timestamps in microseconds since the sweep started) — exportable as
    /// a Perfetto timeline via [`TraceEmitter::write_perfetto`] with worker
    /// ids as tracks.
    pub trace: TraceEmitter,
}

/// Progress and fault counters of one [`run_sweep`] call.
///
/// Pure observability: the counters never influence scheduling, retries or
/// results. They are written alongside the results journal (as
/// `<journal>.profile.json`, atomically, best-effort) so a monitoring loop
/// tailing a long sweep — or a postmortem of a crashed one — can see how
/// the run behaved without parsing worker logs.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SweepProfile {
    /// Grid size handed to [`run_sweep`].
    pub points_total: u64,
    /// Points holding a result when the run ended (journaled + fresh).
    pub completed: u64,
    /// Points satisfied from the journal without running.
    pub resumed: u64,
    /// Attempts beyond the first, summed over all points.
    pub retries: u64,
    /// Attempts reaped by the per-attempt watchdog.
    pub watchdog_timeouts: u64,
    /// Attempts condemned by [`ChaosConfig`] (every condemned attempt
    /// fails, at its kill tick or at the pre-append crash window).
    pub chaos_kills: u64,
    /// Points that exhausted their retries.
    pub failed: u64,
    /// Wall time of the run in microseconds.
    pub wall_micros: u64,
}

impl SweepProfile {
    /// Renders the profile as a single JSON object (the
    /// `<journal>.profile.json` artifact).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"points_total\": {}, \"completed\": {}, \"resumed\": {}, ",
                "\"retries\": {}, \"watchdog_timeouts\": {}, \"chaos_kills\": {}, ",
                "\"failed\": {}, \"wall_micros\": {}}}"
            ),
            self.points_total,
            self.completed,
            self.resumed,
            self.retries,
            self.watchdog_timeouts,
            self.chaos_kills,
            self.failed,
            self.wall_micros,
        )
    }
}

/// Shared observer state of one sweep run: the event trace plus the fault
/// counters, all append-only — workers never read it, so it cannot steer
/// the sweep.
#[derive(Debug)]
struct SweepObserver {
    started: Instant,
    trace: Mutex<TraceEmitter>,
    retries: AtomicU64,
    watchdog_timeouts: AtomicU64,
    chaos_kills: AtomicU64,
}

impl SweepObserver {
    fn new(capacity: usize) -> Self {
        SweepObserver {
            started: Instant::now(),
            trace: Mutex::new(TraceEmitter::new(capacity)),
            retries: AtomicU64::new(0),
            watchdog_timeouts: AtomicU64::new(0),
            chaos_kills: AtomicU64::new(0),
        }
    }

    /// Emits one event stamped with microseconds since the sweep started.
    fn emit(&self, event: TelemetryEvent) {
        let ts = self.started.elapsed().as_micros() as u64;
        self.trace.lock().expect("trace lock").emit(ts, event);
    }
}

/// Errors of the coordination fabric itself (not of individual points —
/// those surface as [`PointFailure`]s in the report).
#[derive(Debug)]
pub enum CoordinatorError {
    /// Reading or writing the journal failed.
    Io(std::io::Error),
}

impl std::fmt::Display for CoordinatorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoordinatorError::Io(e) => write!(f, "journal I/O failed: {e}"),
        }
    }
}

impl std::error::Error for CoordinatorError {}

impl From<std::io::Error> for CoordinatorError {
    fn from(e: std::io::Error) -> Self {
        CoordinatorError::Io(e)
    }
}

/// Runs every unit of the grid through `runner`, journaling each completed
/// point to `journal_path` and resuming from whatever the journal already
/// holds. See the [module docs](self) for the fault model.
///
/// Returns the merged results (journaled + freshly computed) in input-unit
/// order; points that exhausted their retries are reported as
/// [`SweepReport::failures`] and stay missing from the journal, so a later
/// run retries exactly those.
pub fn run_sweep(
    units: &[WorkUnit],
    runner: Arc<PointRunner>,
    journal_path: &Path,
    cfg: &CoordinatorConfig,
) -> Result<SweepReport, CoordinatorError> {
    let journal = Journal::load(journal_path)?;
    let todo: Vec<usize> =
        (0..units.len()).filter(|&i| !journal.entries.contains_key(&units[i].key)).collect();
    let resumed = units.len() - todo.len();

    let journal = Mutex::new(journal);
    let failures = Mutex::new(Vec::new());
    let observer = SweepObserver::new((units.len() * 4).max(64));
    let cursor = AtomicUsize::new(0);
    let workers = cfg.workers.unwrap_or_else(worker_threads).min(todo.len().max(1));

    std::thread::scope(|scope| {
        for w in 0..workers {
            let (cursor, todo, journal, failures, observer, runner) =
                (&cursor, &todo, &journal, &failures, &observer, &runner);
            scope.spawn(move || loop {
                let slot = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&index) = todo.get(slot) else { break };
                let unit = &units[index];
                let worker = w as u32;
                observer.emit(TelemetryEvent::SweepPointStart { key: unit.key.clone(), worker });
                let outcome = run_point(unit, runner, journal_path, cfg, observer);
                let ok = outcome.is_ok();
                match outcome {
                    Ok(value) => {
                        let mut journal = journal.lock().expect("journal lock");
                        // Ignore a racing duplicate (cannot happen with
                        // distinct keys, but double-append must not corrupt).
                        if !journal.entries.contains_key(&unit.key) {
                            if let Err(e) = journal.append(journal_path, &unit.key, &value) {
                                drop(journal);
                                failures.lock().expect("failure lock").push(PointFailure {
                                    key: unit.key.clone(),
                                    attempts: cfg.max_retries + 1,
                                    last_error: format!("journal append failed: {e}"),
                                });
                                observer.emit(TelemetryEvent::SweepPointComplete {
                                    key: unit.key.clone(),
                                    worker,
                                    ok: false,
                                });
                                continue;
                            }
                        }
                    }
                    Err(failure) => {
                        failures.lock().expect("failure lock").push(failure);
                    }
                }
                observer.emit(TelemetryEvent::SweepPointComplete {
                    key: unit.key.clone(),
                    worker,
                    ok,
                });
            });
        }
    });

    let journal = journal.into_inner().expect("all workers joined");
    let mut failures = failures.into_inner().expect("all workers joined");
    failures.sort_by(|a, b| a.key.cmp(&b.key));
    let results: Vec<(String, String)> = units
        .iter()
        .filter_map(|u| journal.entries.get(&u.key).map(|v| (u.key.clone(), v.clone())))
        .collect();
    let retries = observer.retries.load(Ordering::Relaxed);
    let profile = SweepProfile {
        points_total: units.len() as u64,
        completed: results.len() as u64,
        resumed: resumed as u64,
        retries,
        watchdog_timeouts: observer.watchdog_timeouts.load(Ordering::Relaxed),
        chaos_kills: observer.chaos_kills.load(Ordering::Relaxed),
        failed: failures.len() as u64,
        wall_micros: observer.started.elapsed().as_micros() as u64,
    };
    // Best-effort observability artifact next to the journal; the journal
    // itself stays the sole source of truth for resume.
    let _ = write_atomic(&profile_path(journal_path), profile.to_json().as_bytes());
    let trace = observer.trace.into_inner().expect("all workers joined");
    Ok(SweepReport { results, failures, resumed, retries, profile, trace })
}

/// The profile artifact of a sweep: `<journal file name>.profile.json`,
/// next to the journal.
pub fn profile_path(journal_path: &Path) -> PathBuf {
    let mut name = journal_path.file_name().unwrap_or_default().to_os_string();
    name.push(".profile.json");
    journal_path.with_file_name(name)
}

/// Runs one unit through its attempt/backoff loop. `Ok` carries the encoded
/// result; `Err` means the retries are exhausted.
fn run_point(
    unit: &WorkUnit,
    runner: &Arc<PointRunner>,
    journal_path: &Path,
    cfg: &CoordinatorConfig,
    observer: &SweepObserver,
) -> Result<String, PointFailure> {
    let checkpoint_path = checkpoint_path(journal_path, &unit.key);
    let max_attempts = cfg.max_retries + 1;
    let mut last_error = String::new();
    for attempt in 0..max_attempts {
        if attempt > 0 {
            observer.retries.fetch_add(1, Ordering::Relaxed);
            observer.emit(TelemetryEvent::SweepPointRetry { key: unit.key.clone(), attempt });
            let factor = 1u32 << attempt.saturating_sub(1).min(16);
            std::thread::sleep((cfg.backoff_base * factor).min(cfg.backoff_cap));
        }
        let kill_at_tick = cfg
            .chaos
            .filter(|_| attempt + 1 < max_attempts) // the last attempt always survives
            .and_then(|chaos| chaos_kill_tick(&chaos, &unit.key, attempt));
        if kill_at_tick.is_some() {
            // Every condemned attempt dies (at its tick, or at the
            // pre-append window), so condemnations count as kills.
            observer.chaos_kills.fetch_add(1, Ordering::Relaxed);
        }
        match run_attempt(unit, runner, checkpoint_path.clone(), kill_at_tick, cfg.watchdog) {
            Ok(value) => {
                let _ = std::fs::remove_file(&checkpoint_path);
                return Ok(value);
            }
            Err(e) => {
                if e == "watchdog timeout" {
                    observer.watchdog_timeouts.fetch_add(1, Ordering::Relaxed);
                }
                last_error = e;
            }
        }
    }
    let _ = std::fs::remove_file(&checkpoint_path);
    Err(PointFailure { key: unit.key.clone(), attempts: max_attempts, last_error })
}

/// Executes one attempt on a dedicated thread behind the watchdog. The
/// attempt thread owns clones of the unit and runner, so on timeout it can
/// be abandoned without unsoundness; it only ever touches its own
/// checkpoint file, atomically.
fn run_attempt(
    unit: &WorkUnit,
    runner: &Arc<PointRunner>,
    checkpoint_path: PathBuf,
    kill_at_tick: Option<u64>,
    watchdog: Duration,
) -> Result<String, String> {
    let (tx, rx) = mpsc::channel::<Result<String, String>>();
    let unit = unit.clone();
    let runner = Arc::clone(runner);
    let builder = std::thread::Builder::new().name(format!("sweep-point-{}", unit.seed));
    let spawned = builder.spawn(move || {
        let mut context = PointContext { checkpoint_path, kill_at_tick, ticks: 0 };
        let mut outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| runner(&unit, &mut context)))
                .unwrap_or_else(|payload| Err(render_panic(&*payload)));
        // A chaos kill whose tick the runner never reached (too few
        // checkpoints) strikes here instead: the worker "dies" after
        // computing the point but before the journal append — the other
        // classic crash window.
        if outcome.is_ok() && context.kill_at_tick.is_some() {
            outcome = Err("chaos kill (before journal append)".to_string());
        }
        // The receiver may have timed out and gone away; nothing to do then.
        let _ = tx.send(outcome);
    });
    match spawned {
        Ok(_join) => match rx.recv_timeout(watchdog) {
            Ok(outcome) => outcome,
            Err(_) => Err("watchdog timeout".to_string()),
        },
        Err(e) => Err(format!("could not spawn attempt thread: {e}")),
    }
}

/// Renders a panic payload into a journal-safe message.
fn render_panic(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

/// The deterministic chaos decision for `(key, attempt)`: `Some(tick)` to
/// kill at that [`PointContext::checkpoint_tick`], `None` to let the
/// attempt run. Tick numbers start at 1; a kill tick of 1 fires at the
/// first checkpoint, simulating a crash early in the point.
fn chaos_kill_tick(chaos: &ChaosConfig, key: &str, attempt: u32) -> Option<u64> {
    if chaos.kill_probability <= 0.0 {
        return None;
    }
    let mut h = fnv(chaos.seed, key.as_bytes());
    h = fnv(h, &attempt.to_le_bytes());
    // Map the hash to [0, 1) and compare against the kill probability.
    let draw = (h >> 11) as f64 / (1u64 << 53) as f64;
    if draw < chaos.kill_probability.min(1.0) {
        Some(1 + (h % 4))
    } else {
        None
    }
}

fn fnv(mut hash: u64, bytes: &[u8]) -> u64 {
    if hash == 0 {
        hash = 0xCBF2_9CE4_8422_2325;
    }
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Checkpoint file of one point, next to the journal, keyed by the FNV of
/// the point key (keys contain `/` and are unbounded; file names are not).
fn checkpoint_path(journal_path: &Path, key: &str) -> PathBuf {
    let mut name = journal_path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".ckpt-{:016x}", fnv(0, key.as_bytes())));
    journal_path.with_file_name(name)
}

/// Atomic file replacement: write to a sibling temp file, then rename over
/// the destination. A crash at any instant leaves either the old complete
/// file or the new complete file — never a torn mix.
///
/// The implementation lives in [`noc_sim::trace`] (the trace recorder's
/// chunk files share it); this re-delegation keeps the coordinator's
/// long-standing public API.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    noc_sim::trace::write_atomic(path, bytes)
}

// ---------------------------------------------------------------------------
// The results journal
// ---------------------------------------------------------------------------

/// The on-disk journal: JSON lines, one `{"key": …, "value": …}` object per
/// completed point. Appends go through [`write_atomic`], so the journal can
/// never hold a torn line; [`Journal::load`] additionally tolerates one (a
/// journal written by a non-atomic writer that crashed mid-append) by
/// ignoring an unparseable final line.
#[derive(Debug, Default)]
struct Journal {
    entries: BTreeMap<String, String>,
}

impl Journal {
    fn load(path: &Path) -> Result<Self, CoordinatorError> {
        let mut journal = Journal::default();
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(journal),
            Err(e) => return Err(e.into()),
        };
        let lines: Vec<&str> = text.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match parse_entry(line) {
                Some((key, value)) => {
                    journal.entries.insert(key, value);
                }
                None if i + 1 == lines.len() => {
                    // A torn final line: the previous process died mid-append.
                    // Everything before it is intact — resume from there.
                }
                None => {
                    return Err(CoordinatorError::Io(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("journal line {} is corrupt", i + 1),
                    )));
                }
            }
        }
        Ok(journal)
    }

    /// Appends one completed point and atomically replaces the journal file.
    fn append(&mut self, path: &Path, key: &str, value: &str) -> std::io::Result<()> {
        self.entries.insert(key.to_string(), value.to_string());
        let mut text = String::new();
        for (k, v) in &self.entries {
            text.push_str(&render_entry(k, v));
            text.push('\n');
        }
        write_atomic(path, text.as_bytes())
    }
}

fn render_entry(key: &str, value: &str) -> String {
    format!("{{\"key\":\"{}\",\"value\":\"{}\"}}", escape_json(key), escape_json(value))
}

fn parse_entry(line: &str) -> Option<(String, String)> {
    let rest = line.trim().strip_prefix("{\"key\":\"")?;
    let (key, rest) = split_json_string(rest)?;
    let rest = rest.strip_prefix(",\"value\":\"")?;
    let (value, rest) = split_json_string(rest)?;
    rest.strip_prefix('}').filter(|r| r.is_empty())?;
    Some((key, value))
}

/// Splits a JSON string body at its closing unescaped quote, unescaping it;
/// returns `(content, remainder-after-quote)`.
fn split_json_string(s: &str) -> Option<(String, &str)> {
    let mut out = String::new();
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Some((out, &s[i + 1..])),
            '\\' => match chars.next()?.1 {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        code = code * 16 + chars.next()?.1.to_digit(16)?;
                    }
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            _ => out.push(c),
        }
    }
    None
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Operating-point result codec (exact, journal-string form)
// ---------------------------------------------------------------------------

/// Encodes an operating point for the journal. Floats are written as their
/// exact bit patterns, so `decode(encode(x)) == x` bit for bit and the
/// "chaos sweep equals uninterrupted sweep" comparison can be plain string
/// equality.
pub fn encode_operating_point(r: &OperatingPointResult) -> String {
    format!(
        "op1|{}|{:016x}|{:016x}|{:016x}|{:016x}|{:016x}|{:016x}|{:016x}|{:016x}|{:016x}|{:016x}|{:016x}|{}|{:016x}|{}|{:016x}",
        escape_field(&r.policy),
        r.offered_load.to_bits(),
        r.measured_rate.to_bits(),
        r.avg_latency_cycles.to_bits(),
        r.avg_delay_ns.to_bits(),
        r.max_delay_ns.to_bits(),
        r.power_mw.to_bits(),
        r.dynamic_power_mw.to_bits(),
        r.static_power_mw.to_bits(),
        r.avg_frequency_ghz.to_bits(),
        r.avg_vdd.to_bits(),
        r.throughput.to_bits(),
        r.packets_delivered,
        r.measurement_wall_ns.to_bits(),
        r.flits_dropped,
        r.reachability.to_bits(),
    )
}

/// Decodes a journal string written by [`encode_operating_point`]; `None`
/// for anything malformed.
pub fn decode_operating_point(s: &str) -> Option<OperatingPointResult> {
    let mut parts = s.split('|');
    if parts.next()? != "op1" {
        return None;
    }
    let policy = unescape_field(parts.next()?);
    let mut f = || -> Option<f64> { Some(f64::from_bits(u64::from_str_radix(parts.next()?, 16).ok()?)) };
    let offered_load = f()?;
    let measured_rate = f()?;
    let avg_latency_cycles = f()?;
    let avg_delay_ns = f()?;
    let max_delay_ns = f()?;
    let power_mw = f()?;
    let dynamic_power_mw = f()?;
    let static_power_mw = f()?;
    let avg_frequency_ghz = f()?;
    let avg_vdd = f()?;
    let throughput = f()?;
    let packets_delivered = parts.next()?.parse().ok()?;
    let measurement_wall_ns = f64::from_bits(u64::from_str_radix(parts.next()?, 16).ok()?);
    let flits_dropped = parts.next()?.parse().ok()?;
    let reachability = f64::from_bits(u64::from_str_radix(parts.next()?, 16).ok()?);
    if parts.next().is_some() {
        return None;
    }
    Some(OperatingPointResult {
        policy,
        offered_load,
        measured_rate,
        avg_latency_cycles,
        avg_delay_ns,
        max_delay_ns,
        power_mw,
        dynamic_power_mw,
        static_power_mw,
        avg_frequency_ghz,
        avg_vdd,
        throughput,
        packets_delivered,
        measurement_wall_ns,
        flits_dropped,
        reachability,
    })
}

fn escape_field(s: &str) -> String {
    s.replace('\\', "\\\\").replace('|', "\\p")
}

fn unescape_field(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('p') => out.push('|'),
                Some('\\') => out.push('\\'),
                Some(other) => out.push(other),
                None => {}
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    /// A unique temp directory per test, cleaned up on drop.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir()
                .join(format!("noc-coordinator-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).expect("temp dir");
            TempDir(dir)
        }
        fn path(&self, name: &str) -> PathBuf {
            self.0.join(name)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn units(n: usize) -> Vec<WorkUnit> {
        (0..n)
            .map(|i| WorkUnit::new("test", PolicyKind::NoDvfs, i as f64 * 0.01, 42))
            .collect()
    }

    /// A cheap deterministic runner: the "result" is a pure function of the
    /// unit.
    fn echo_runner() -> Arc<PointRunner> {
        Arc::new(|unit: &WorkUnit, ctx: &mut PointContext| {
            ctx.checkpoint_tick();
            Ok(format!("value-of-{}", unit.key))
        })
    }

    #[test]
    fn keys_are_distinct_and_stable() {
        let grid = shard_policy_grid("g", &[PolicyKind::NoDvfs], &[0.1, 0.2, 0.1 + 1e-18], 7);
        assert_eq!(grid.len(), 3);
        assert_ne!(grid[0].key, grid[1].key);
        // 0.1 + 1e-18 rounds to 0.1 in f64 — identical bits, identical key.
        assert_eq!(grid[0].key, grid[2].key);
        let again = shard_policy_grid("g", &[PolicyKind::NoDvfs], &[0.1, 0.2, 0.1 + 1e-18], 7);
        assert_eq!(grid[1].key, again[1].key);
    }

    #[test]
    fn sweep_completes_and_journals_every_point() {
        let dir = TempDir::new("basic");
        let journal = dir.path("journal.jsonl");
        let grid = units(9);
        let report =
            run_sweep(&grid, echo_runner(), &journal, &CoordinatorConfig::quick()).unwrap();
        assert_eq!(report.results.len(), 9);
        assert!(report.failures.is_empty());
        assert_eq!(report.resumed, 0);
        for (unit, (key, value)) in grid.iter().zip(&report.results) {
            assert_eq!(key, &unit.key);
            assert_eq!(value, &format!("value-of-{}", unit.key));
        }
        // The journal round-trips: a second run re-computes nothing.
        let calls = AtomicU32::new(0);
        let counting: Arc<PointRunner> = {
            let calls = &calls;
            // Scoped borrow is not 'static; emulate by a fresh runner that
            // would produce *different* values — resume must not call it.
            let _ = calls;
            Arc::new(|_: &WorkUnit, _: &mut PointContext| Ok("WRONG".to_string()))
        };
        let resumed = run_sweep(&grid, counting, &journal, &CoordinatorConfig::quick()).unwrap();
        assert_eq!(resumed.resumed, 9);
        assert_eq!(resumed.results, report.results, "resume must not recompute");
    }

    #[test]
    fn panics_are_contained_and_retried() {
        let dir = TempDir::new("panic");
        let journal = dir.path("journal.jsonl");
        let grid = units(6);
        // Panic on the first attempt of every odd point; succeed afterwards.
        let attempts = Arc::new(Mutex::new(BTreeMap::<String, u32>::new()));
        let runner: Arc<PointRunner> = {
            let attempts = Arc::clone(&attempts);
            Arc::new(move |unit: &WorkUnit, _: &mut PointContext| {
                let n = {
                    // Scope the lock: panicking while holding it would poison
                    // the map for every later attempt.
                    let mut map = attempts.lock().unwrap();
                    let n = map.entry(unit.key.clone()).or_insert(0);
                    *n += 1;
                    *n
                };
                if n == 1 && unit.load.to_bits() % 2 == 1 {
                    panic!("injected failure for {}", unit.key);
                }
                Ok(format!("value-of-{}", unit.key))
            })
        };
        let report = run_sweep(&grid, runner, &journal, &CoordinatorConfig::quick()).unwrap();
        assert_eq!(report.results.len(), 6);
        assert!(report.failures.is_empty());
        assert!(report.retries > 0, "the panicked points must have been retried");
    }

    #[test]
    fn a_point_that_always_fails_does_not_sink_the_grid() {
        let dir = TempDir::new("hardfail");
        let journal = dir.path("journal.jsonl");
        let grid = units(5);
        let poison = grid[2].key.clone();
        let runner: Arc<PointRunner> = {
            let poison = poison.clone();
            Arc::new(move |unit: &WorkUnit, _: &mut PointContext| {
                if unit.key == poison {
                    Err("deterministic failure".to_string())
                } else {
                    Ok(format!("value-of-{}", unit.key))
                }
            })
        };
        let cfg = CoordinatorConfig { max_retries: 1, ..CoordinatorConfig::quick() };
        let report = run_sweep(&grid, Arc::clone(&runner), &journal, &cfg).unwrap();
        assert_eq!(report.results.len(), 4, "the healthy points complete");
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].key, poison);
        assert_eq!(report.failures[0].attempts, 2);
        assert_eq!(report.failures[0].last_error, "deterministic failure");
        // The failed point is exactly what a re-run retries.
        let healed: Arc<PointRunner> =
            Arc::new(|unit: &WorkUnit, _: &mut PointContext| Ok(format!("value-of-{}", unit.key)));
        let second = run_sweep(&grid, healed, &journal, &cfg).unwrap();
        assert_eq!(second.resumed, 4);
        assert_eq!(second.results.len(), 5);
        assert!(second.failures.is_empty());
    }

    #[test]
    fn watchdog_reaps_a_stuck_point() {
        let dir = TempDir::new("stuck");
        let journal = dir.path("journal.jsonl");
        let grid = units(3);
        let stuck_key = grid[1].key.clone();
        // The stuck attempt parks until the test ends (bounded, so the
        // abandoned thread cannot outlive the suite for long).
        let runner: Arc<PointRunner> = {
            let stuck_key = stuck_key.clone();
            let first = Arc::new(Mutex::new(true));
            Arc::new(move |unit: &WorkUnit, _: &mut PointContext| {
                if unit.key == stuck_key {
                    let mut first = first.lock().unwrap();
                    if *first {
                        *first = false;
                        drop(first);
                        std::thread::sleep(Duration::from_secs(2));
                    }
                }
                Ok(format!("value-of-{}", unit.key))
            })
        };
        let cfg = CoordinatorConfig {
            watchdog: Duration::from_millis(50),
            ..CoordinatorConfig::quick()
        };
        let report = run_sweep(&grid, runner, &journal, &cfg).unwrap();
        assert_eq!(report.results.len(), 3, "the stuck point recovers on retry");
        assert!(report.failures.is_empty());
        assert!(report.retries >= 1);
    }

    #[test]
    fn chaos_kills_converge_to_the_uninterrupted_artifact() {
        let dir = TempDir::new("chaos");
        let clean_journal = dir.path("clean.jsonl");
        let chaos_journal = dir.path("chaos.jsonl");
        let grid = units(12);
        let report =
            run_sweep(&grid, echo_runner(), &clean_journal, &CoordinatorConfig::quick()).unwrap();
        let chaos_cfg = CoordinatorConfig::quick()
            .with_chaos(ChaosConfig { kill_probability: 0.9, seed: 0xC4A0 });
        let chaos_report =
            run_sweep(&grid, echo_runner(), &chaos_journal, &chaos_cfg).unwrap();
        assert!(chaos_report.failures.is_empty(), "chaos must converge");
        assert!(chaos_report.retries > 0, "a 90% kill rate must cause retries");
        assert_eq!(chaos_report.results, report.results, "artifact must be bit-identical");
        // And so must the journal files themselves.
        assert_eq!(
            std::fs::read_to_string(&clean_journal).unwrap(),
            std::fs::read_to_string(&chaos_journal).unwrap()
        );
    }

    #[test]
    fn checkpoints_warm_start_a_retried_point() {
        let dir = TempDir::new("warm");
        let journal = dir.path("journal.jsonl");
        let grid = units(1);
        // The runner "computes" in 4 chunks, checkpointing its progress; the
        // first attempt dies after chunk 2. The retry must resume from the
        // checkpoint (progress 2), not from scratch.
        let observed_starts = Arc::new(Mutex::new(Vec::new()));
        let runner: Arc<PointRunner> = {
            let observed = Arc::clone(&observed_starts);
            Arc::new(move |unit: &WorkUnit, ctx: &mut PointContext| {
                let mut progress = ctx
                    .load_checkpoint()
                    .and_then(|b| String::from_utf8(b).ok())
                    .and_then(|s| s.parse::<u32>().ok())
                    .unwrap_or(0);
                observed.lock().unwrap().push(progress);
                let first_attempt = progress == 0;
                while progress < 4 {
                    progress += 1;
                    ctx.save_checkpoint(progress.to_string().as_bytes());
                    if first_attempt && progress == 2 {
                        panic!("simulated crash after chunk 2");
                    }
                }
                Ok(format!("done-{}-chunks4", unit.key))
            })
        };
        let report = run_sweep(&grid, runner, &journal, &CoordinatorConfig::quick()).unwrap();
        assert!(report.failures.is_empty());
        let starts = observed_starts.lock().unwrap().clone();
        assert_eq!(starts, vec![0, 2], "retry must warm-start from the checkpoint");
        // Success removes the checkpoint file.
        assert!(!checkpoint_path(&journal, &grid[0].key).exists());
    }

    #[test]
    fn journal_tolerates_a_torn_final_line() {
        let dir = TempDir::new("torn");
        let journal_path = dir.path("journal.jsonl");
        let grid = units(4);
        let report =
            run_sweep(&grid, echo_runner(), &journal_path, &CoordinatorConfig::quick()).unwrap();
        assert_eq!(report.results.len(), 4);
        // Simulate a crash mid-append by a non-atomic writer: truncate the
        // journal inside its final line.
        let text = std::fs::read_to_string(&journal_path).unwrap();
        let cut = text.len() - 7;
        std::fs::write(&journal_path, &text[..cut]).unwrap();
        let resumed =
            run_sweep(&grid, echo_runner(), &journal_path, &CoordinatorConfig::quick()).unwrap();
        assert_eq!(resumed.resumed, 3, "three intact lines survive the tear");
        assert_eq!(resumed.results, report.results, "the torn point is recomputed identically");
    }

    #[test]
    fn journal_rejects_corruption_before_the_final_line() {
        let dir = TempDir::new("corrupt");
        let journal_path = dir.path("journal.jsonl");
        let grid = units(3);
        run_sweep(&grid, echo_runner(), &journal_path, &CoordinatorConfig::quick()).unwrap();
        let mut text = std::fs::read_to_string(&journal_path).unwrap();
        let mid = text.find('\n').unwrap() + 3;
        text.replace_range(mid..mid + 1, "\u{0}");
        std::fs::write(&journal_path, &text).unwrap();
        let err = run_sweep(&grid, echo_runner(), &journal_path, &CoordinatorConfig::quick());
        assert!(err.is_err(), "corruption in the journal body must fail loudly");
    }

    #[test]
    fn json_escaping_round_trips() {
        for s in ["plain", "with \"quotes\"", "back\\slash", "tab\there", "nl\nthere", "\u{1}"] {
            let line = render_entry(s, s);
            let (k, v) = parse_entry(&line).expect("round trip");
            assert_eq!(k, s);
            assert_eq!(v, s);
        }
        assert!(parse_entry("{\"key\":\"a\"}").is_none());
        assert!(parse_entry("garbage").is_none());
    }

    #[test]
    fn operating_point_codec_is_bit_exact() {
        let point = OperatingPointResult {
            policy: "DMSD|odd\\name".to_string(),
            offered_load: 0.1,
            measured_rate: 0.1 + f64::EPSILON,
            avg_latency_cycles: 17.25,
            avg_delay_ns: f64::MIN_POSITIVE,
            max_delay_ns: 1e300,
            power_mw: -0.0,
            dynamic_power_mw: 3.5,
            static_power_mw: 1.5,
            avg_frequency_ghz: 1.0,
            avg_vdd: 0.9,
            throughput: 0.099,
            packets_delivered: u64::MAX,
            measurement_wall_ns: 123.456,
            flits_dropped: 7,
            reachability: 1.0,
        };
        let encoded = encode_operating_point(&point);
        let decoded = decode_operating_point(&encoded).expect("decode");
        assert_eq!(format!("{point:?}"), format!("{decoded:?}"));
        assert_eq!(decoded.power_mw.to_bits(), (-0.0f64).to_bits(), "-0.0 survives");
        assert!(decode_operating_point("op1|truncated").is_none());
        assert!(decode_operating_point(&format!("{encoded}|extra")).is_none());
        assert!(decode_operating_point(&encoded.replace("op1", "op9")).is_none());
    }
}
