//! Fig. 6 bench: activity-driven power estimation of a full mesh (the
//! conversion from simulated switching activity to milliwatts performed at
//! every control interval of every experiment).

use criterion::{criterion_group, criterion_main, Criterion};
use noc_power::{FdsoiTech, RouterPowerModel};
use noc_sim::{Hertz, NetworkActivity, NocSimulation, SyntheticTraffic, TrafficPattern};
use noc_sim::NetworkConfig;
use std::hint::black_box;
use std::time::Duration;

/// Produces a realistic activity snapshot by actually simulating the paper
/// baseline for a short while.
fn baseline_activity() -> (NetworkActivity, f64) {
    let cfg = NetworkConfig::paper_baseline();
    let traffic = SyntheticTraffic::new(TrafficPattern::Uniform, 0.2, cfg.packet_length());
    let mut sim = NocSimulation::new(cfg, Box::new(traffic), 3);
    sim.run_cycles(5_000);
    let wall = sim.wall_time().as_ps();
    (sim.take_activity(), wall)
}

fn bench_fig6(c: &mut Criterion) {
    let (activity, duration_ps) = baseline_activity();
    let model = RouterPowerModel::new();
    let tech = FdsoiTech::new();
    let mut group = c.benchmark_group("fig6_power_estimation");
    group.measurement_time(Duration::from_secs(3));
    for mhz in [333.0, 666.0, 1000.0] {
        let f = Hertz::from_mhz(mhz);
        let vdd = tech.vdd_for_frequency(f);
        group.bench_function(format!("network_power_25_routers_{mhz}MHz"), |b| {
            b.iter(|| black_box(model.network_power(&activity, f, vdd, duration_ps)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
