//! Invariants of the trace record/replay engine.
//!
//! Three contracts are pinned here:
//!
//! 1. **Replay ≡ record bit-identity** — wrapping any live traffic source
//!    in a [`RecordingTraffic`] and re-running the *same* configuration
//!    from the recorded trace ([`TraceTraffic`]) reproduces the window
//!    ledger and aggregate statistics bit for bit, across the gating ×
//!    faults × islands × topology configuration axes and under mid-run
//!    DVFS frequency changes. The replay run deliberately uses a
//!    *different* RNG seed: a recorded trace must drive the network
//!    without consulting the traffic RNG at all. CI re-runs this file
//!    under `NOC_DENSE_STEP=1` and `NOC_NO_SKIP=1`, so the contract holds
//!    on the dense reference engine and with event-horizon skipping
//!    disabled.
//! 2. **Per-tenant ledger replay** — with a [`TenantMap`] installed on
//!    both runs, the per-tenant window ledgers replay bit-identically too.
//! 3. **Bounded memory** — replaying a trace much larger than one chunk
//!    never holds more than one chunk resident: the reader's chunk-load
//!    counter shows every chunk decoded exactly once over a sequential
//!    scan.

use noc_sim::{
    Direction, FaultConfig, FaultEvent, FaultTarget, GatingConfig, Hertz, NetworkConfig,
    NocSimulation, RecordingTraffic, RegionLayout, SyntheticTraffic, TenantMap, TopologyKind,
    TraceReader, TraceTraffic, TraceWriter, TrafficPattern, WindowMeasurement,
};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

fn tmpdir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("noc-trace-invariants-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn base() -> noc_sim::NetworkConfigBuilder {
    NetworkConfig::builder().mesh(4, 4).virtual_channels(2).buffer_depth(4).packet_length(5)
}

/// The gating × faults × islands × topology configuration axes the replay
/// contract is pinned on.
fn configs() -> Vec<(&'static str, NetworkConfig)> {
    vec![
        ("baseline", base().build().unwrap()),
        ("gated", base().gating(GatingConfig::enabled(12, 4)).build().unwrap()),
        (
            "faulted",
            base()
                .faults(FaultConfig::scheduled(vec![
                    FaultEvent::permanent(FaultTarget::Link { node: 5, dir: Direction::East }, 200),
                    FaultEvent::permanent(FaultTarget::Link { node: 10, dir: Direction::South }, 400),
                ]))
                .build()
                .unwrap(),
        ),
        ("quadrants", base().regions(RegionLayout::Quadrants).build().unwrap()),
        ("torus", base().topology(TopologyKind::Torus).build().unwrap()),
    ]
}

/// The shared run schedule: four measurement windows with a DVFS frequency
/// change before each, so replay must match generation batches wider than
/// one node cycle per NoC tick.
const PLAN: [(f64, u64); 4] = [(1000.0, 500), (500.0, 400), (800.0, 600), (333.0, 500)];

/// Drives `sim` through the shared schedule and returns its window ledger
/// (plus the per-tenant ledgers when a map is installed).
fn drive(sim: &mut NocSimulation) -> (Vec<WindowMeasurement>, Vec<Vec<WindowMeasurement>>) {
    let mut windows = Vec::new();
    let mut tenant_windows = Vec::new();
    for (mhz, cycles) in PLAN {
        sim.set_noc_frequency(Hertz::from_mhz(mhz));
        sim.run_cycles(cycles);
        windows.push(sim.take_window());
        tenant_windows.push(sim.take_tenant_windows());
    }
    (windows, tenant_windows)
}

/// Records a run of `cfg` under uniform traffic into `dir`, returning its
/// ledgers; then replays the trace on a fresh simulation with a different
/// seed and asserts bit-identity.
fn assert_replay_matches_record(name: &str, cfg: NetworkConfig, map: Option<TenantMap>) {
    let dir = tmpdir(name);
    let writer = Arc::new(Mutex::new(
        TraceWriter::create(&dir, cfg.packet_length(), cfg.node_count(), 256).unwrap(),
    ));
    let inner = SyntheticTraffic::new(TrafficPattern::Uniform, 0.12, cfg.packet_length());
    let mut recording = RecordingTraffic::new(Box::new(inner), Arc::clone(&writer));
    if let Some(map) = &map {
        recording = recording.with_tenants(map);
    }
    let mut record_sim = NocSimulation::new(cfg.clone(), Box::new(recording), 2015);
    if let Some(map) = &map {
        record_sim.set_tenant_map(map.clone()).unwrap();
    }
    let (recorded_windows, recorded_tenants) = drive(&mut record_sim);
    let recorded_stats = *record_sim.stats();
    let summary = writer.lock().unwrap().finish().unwrap();
    assert!(summary.events > 0, "{name}: the recording must capture injections");

    // Replay with a different seed: the trace alone must reproduce the run.
    let replay = TraceTraffic::open(&dir).unwrap();
    assert_eq!(replay.node_count(), cfg.node_count());
    let mut replay_sim = NocSimulation::new(cfg, Box::new(replay), 77_777);
    if let Some(map) = &map {
        replay_sim.set_tenant_map(map.clone()).unwrap();
    }
    let (replayed_windows, replayed_tenants) = drive(&mut replay_sim);

    assert_eq!(replayed_windows, recorded_windows, "{name}: window ledger must replay exactly");
    assert_eq!(replayed_tenants, recorded_tenants, "{name}: tenant ledgers must replay exactly");
    assert_eq!(replay_sim.stats(), &recorded_stats, "{name}: aggregate stats must replay exactly");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replay_reproduces_the_record_bit_for_bit_across_config_axes() {
    for (name, cfg) in configs() {
        assert_replay_matches_record(name, cfg, None);
    }
}

#[test]
fn replay_reproduces_per_tenant_ledgers() {
    let cfg = base().build().unwrap();
    // Two 8-node tenants splitting the 4×4 fabric.
    let owner = (0..16).map(|n| Some(u32::from(n >= 8))).collect();
    let map = TenantMap::new(owner, 2).unwrap();
    assert_replay_matches_record("tenants", cfg, Some(map));
}

#[test]
fn replay_is_deterministic_across_replays() {
    // Two replays of the same trace (different seeds) must agree with each
    // other — the replay source owns all the injection state.
    let (name, cfg) = ("replay-twice", base().build().unwrap());
    let dir = tmpdir(name);
    let writer = Arc::new(Mutex::new(
        TraceWriter::create(&dir, cfg.packet_length(), cfg.node_count(), 128).unwrap(),
    ));
    let inner = SyntheticTraffic::new(TrafficPattern::Transpose, 0.2, cfg.packet_length());
    let recording = RecordingTraffic::new(Box::new(inner), Arc::clone(&writer));
    let mut sim = NocSimulation::new(cfg.clone(), Box::new(recording), 9);
    let _ = drive(&mut sim);
    writer.lock().unwrap().finish().unwrap();

    let mut ledgers = Vec::new();
    for seed in [1u64, 424_242] {
        let replay = TraceTraffic::open(&dir).unwrap();
        let mut sim = NocSimulation::new(cfg.clone(), Box::new(replay), seed);
        ledgers.push(drive(&mut sim));
    }
    assert_eq!(ledgers[0], ledgers[1], "replay must not depend on the simulation seed");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replaying_a_trace_larger_than_one_chunk_streams_chunk_by_chunk() {
    let cfg = base().build().unwrap();
    let dir = tmpdir("memory-bound");
    // A tiny chunk budget: the recorded trace spans many chunks, far more
    // than the reader's single resident buffer could hold at once.
    let writer = Arc::new(Mutex::new(
        TraceWriter::create(&dir, cfg.packet_length(), cfg.node_count(), 64).unwrap(),
    ));
    let inner = SyntheticTraffic::new(TrafficPattern::Uniform, 0.25, cfg.packet_length());
    let recording = RecordingTraffic::new(Box::new(inner), Arc::clone(&writer));
    let mut sim = NocSimulation::new(cfg.clone(), Box::new(recording), 31);
    sim.run_cycles(3_000);
    let summary = writer.lock().unwrap().finish().unwrap();
    assert!(summary.chunks > 10, "the trace must span many chunks, got {}", summary.chunks);

    // A full sequential scan decodes every chunk exactly once: the reader
    // holds one chunk resident and never re-reads or prefetches.
    let mut reader = TraceReader::open(&dir).unwrap();
    assert_eq!(reader.chunk_loads(), 0, "opening must not load event chunks");
    let mut events = 0u64;
    let mut last_loads = 0;
    while let Some(_event) = reader.next().unwrap() {
        events += 1;
        let loads = reader.chunk_loads();
        assert!(loads <= last_loads + 1, "the reader must load at most one new chunk per event");
        last_loads = loads;
    }
    assert_eq!(events, summary.events);
    assert_eq!(reader.chunk_loads(), summary.chunks as u64, "each chunk decodes exactly once");

    // Replaying through the TrafficSpec face streams the same way.
    let replay = TraceTraffic::open(&dir).unwrap();
    assert_eq!(replay.chunk_loads(), 1, "opening the replay source loads only the first chunk");
    let mut sim = NocSimulation::new(cfg, Box::new(replay), 5);
    sim.run_cycles(6_000);
    let window = sim.take_window();
    assert!(window.flits_generated > 0);
    let _ = std::fs::remove_dir_all(&dir);
}
