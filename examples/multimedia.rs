//! Multimedia workloads: the H.264 encoder and the Video Conference Encoder
//! of Sec. VI / Fig. 10.
//!
//! ```text
//! cargo run --release --example multimedia [h264|vce|both]
//! ```
//!
//! Maps the selected application's task graph onto its mesh (4×4 for H.264,
//! 5×5 for the VCE), sweeps the application speed, and prints the packet
//! delay and NoC power of the three DVFS policies — the reproduction of
//! Fig. 10(a–d).

use noc_dvfs_repro::apps::{h264_encoder, video_conference_encoder, TaskGraph};
use noc_dvfs_repro::dvfs::experiments::{compare_policies_application, ExperimentQuality};
use std::env;

fn main() {
    let which = env::args().nth(1).unwrap_or_else(|| "both".to_string());
    let apps: Vec<TaskGraph> = match which.as_str() {
        "h264" => vec![h264_encoder()],
        "vce" => vec![video_conference_encoder()],
        "both" => vec![h264_encoder(), video_conference_encoder()],
        other => {
            eprintln!("unknown application '{other}'; use h264, vce or both");
            std::process::exit(1);
        }
    };

    let quality = ExperimentQuality::quick();
    for app in apps {
        let (w, h) = app.mesh_size();
        println!(
            "Application '{}' — {} tasks, {} edges, {:.0} packets/frame, mapped on a {}x{} mesh",
            app.name(),
            app.tasks().len(),
            app.edges().len(),
            app.packets_per_frame(),
            w,
            h
        );
        let comparison = compare_policies_application(&app, &quality);
        println!(
            "{:>10} {:>10} {:>12} {:>12} {:>10}",
            "policy", "speed", "delay (ns)", "power (mW)", "freq (GHz)"
        );
        for curve in &comparison.curves {
            for point in &curve.points {
                println!(
                    "{:>10} {:>10.2} {:>12.1} {:>12.1} {:>10.3}",
                    curve.policy,
                    point.load,
                    point.result.avg_delay_ns,
                    point.result.power_mw,
                    point.result.avg_frequency_ghz
                );
            }
        }
        println!();
    }
    println!(
        "As in the paper, the extra power that RMSD saves over DMSD comes at a large increase \
         of the NoC delay, which directly stretches the encoder's application latency."
    );
}
