//! Zero-perturbation observability: counter fabric, structured event trace,
//! congestion heatmaps and engine profiling.
//!
//! The telemetry layer is **off by default** and installed at run time
//! ([`NocSimulation::install_telemetry`](crate::NocSimulation::install_telemetry)),
//! exactly like the tenant map: installing it changes **no** simulation
//! behaviour. Probes are read-only observers — they draw no RNG, schedule
//! nothing, and touch no state the cycle loop reads — so every window,
//! golden and RNG stream is bit-identical with telemetry on or off (pinned
//! by `tests/telemetry_invariants.rs` across engines, skipping modes and
//! subsystem combinations, the same differential discipline as
//! sparse ≡ dense). With telemetry uninstalled each probe site costs one
//! `is_some` branch.
//!
//! Three sub-surfaces share the layer:
//!
//! * **Counter fabric** — per-router/per-port/per-VC probes (switch grants,
//!   stall causes, link utilization, escape- vs adaptive-class usage,
//!   occupancy histograms) plus engine-level counters (gating transitions,
//!   fault events/drops, horizon jumps, worklist occupancy), aggregated into
//!   periodic [`TelemetrySnapshot`]s held in a bounded ring of the last *K*
//!   sample windows.
//! * **Structured event trace** — a [`TraceEmitter`] ring of typed
//!   [`TelemetryEvent`]s (gate/wake, fault inject/recover, horizon jumps,
//!   set-frequency, island progress, sweep points) with a Chrome/Perfetto
//!   `trace_events` JSON exporter ([`TraceEmitter::perfetto_json`]):
//!   simulated cycles become timestamps, islands and routers become tracks,
//!   and a run opens directly in a trace viewer.
//! * **Profiling** — an [`EngineProfile`] of wall time per step phase, skip
//!   statistics and per-worker island-thread balance
//!   ([`TelemetryConfig::with_profile`]).
//!
//! The per-router congestion view exports as a [`CongestionHeatmap`]
//! (JSON/CSV) for the figures pipeline; see `examples/telemetry_heatmap.rs`.

use crate::router::{Router, TraversalOutput, LOCAL_PORT};
use crate::topology::PORT_COUNT;
use std::collections::VecDeque;

/// Number of bins in the buffer-occupancy histogram: occupancies `0..=15`
/// bin exactly, deeper buffers saturate into the last bin.
pub const OCC_BINS: usize = 17;

/// Configuration of the telemetry layer (see the [module docs](self)).
///
/// The default enables the counter fabric with a 1024-cycle sample interval,
/// a 16-window snapshot ring, a 4096-event trace ring, and no wall-clock
/// profiling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryConfig {
    /// Base ticks per [`TelemetrySnapshot`] sample window.
    pub sample_interval: u64,
    /// Number of snapshot windows retained (ring of the last *K*).
    pub history: usize,
    /// Capacity of the [`TraceEmitter`] event ring (`0` disables event
    /// tracing; counters and snapshots still run).
    pub trace_capacity: usize,
    /// Whether to collect wall-clock [`EngineProfile`] timings.
    pub profile: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig { sample_interval: 1024, history: 16, trace_capacity: 4096, profile: false }
    }
}

impl TelemetryConfig {
    /// Sets the snapshot sample interval in base ticks (clamped to ≥ 1).
    pub fn with_sample_interval(mut self, cycles: u64) -> Self {
        self.sample_interval = cycles.max(1);
        self
    }

    /// Sets how many snapshot windows the ring retains (clamped to ≥ 1).
    pub fn with_history(mut self, windows: usize) -> Self {
        self.history = windows.max(1);
        self
    }

    /// Sets the event-trace ring capacity (`0` disables event tracing).
    pub fn with_trace_capacity(mut self, events: usize) -> Self {
        self.trace_capacity = events;
        self
    }

    /// Enables wall-clock profiling of the step phases.
    pub fn with_profile(mut self, enabled: bool) -> Self {
        self.profile = enabled;
        self
    }
}

/// Why a buffered input VC cannot advance this cycle — the stall census the
/// per-router probe takes after the pipeline stages ran.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub(crate) struct StallCensus {
    /// Active VCs whose allocated output VC has zero credits.
    pub(crate) no_credit: u64,
    /// Active VCs whose output port is fenced (gated, waking or failed
    /// downstream).
    pub(crate) fenced: u64,
    /// VCs waiting for VC allocation whose required escape class (class 0)
    /// has no free output VC — the escape network is the contended resource.
    pub(crate) escape_hold: u64,
    /// VCs still waiting for route computation.
    pub(crate) route_wait: u64,
    /// VCs waiting for VC allocation for any other reason (all candidate
    /// output VCs of a non-escape class taken).
    pub(crate) va_wait: u64,
}

/// Per-router accumulation window of the counter fabric. Reset at every
/// snapshot sample; parallel island workers write only their own islands'
/// slots (the same disjointness argument as the router vector itself).
#[derive(Debug, Default, Clone)]
pub(crate) struct RouterProbe {
    /// Flits that won switch allocation + traversal this window (towards a
    /// link or the local ejection port).
    pub(crate) grants: u64,
    /// Flits sent per output port (`LOCAL_PORT` slot counts ejections).
    pub(crate) link_flits: [u64; PORT_COUNT],
    /// Flits ejected to the local node.
    pub(crate) ejected: u64,
    /// Outgoing flits assigned an escape-class (class 0) downstream VC.
    pub(crate) escape_flits: u64,
    /// Outgoing flits assigned an adaptive-class (class 1) downstream VC.
    pub(crate) adaptive_flits: u64,
    /// The stall census accumulated over the window.
    pub(crate) stalls: StallCensus,
    /// Flits dropped at this router (fault purges, blocked-port discards and
    /// orphaned-segment drains).
    pub(crate) dropped: u64,
}

impl RouterProbe {
    /// Accumulate one router's pipeline step into the window. Called right
    /// after the router's SA/ST + VA + RC sequence with the traversal scratch
    /// still holding this router's output; reads only — the probe never
    /// writes back into the router or the scratch.
    pub(crate) fn record(&mut self, scratch: &TraversalOutput, fence: u8, router: &Router) {
        self.grants += (scratch.outgoing.len() + scratch.ejected.len()) as u64;
        self.ejected += scratch.ejected.len() as u64;
        for out in &scratch.outgoing {
            self.link_flits[out.out_port] += 1;
            if router.vc_is_escape(out.flit.vc()) {
                self.escape_flits += 1;
            } else {
                self.adaptive_flits += 1;
            }
        }
        self.link_flits[LOCAL_PORT] += scratch.ejected.len() as u64;
        self.dropped += scratch.dropped;
        router.stall_census(fence, &mut self.stalls);
    }

    fn total_link_flits(&self) -> u64 {
        self.link_flits.iter().sum()
    }

    fn reset(&mut self) {
        *self = RouterProbe { ..Default::default() };
    }
}

/// One aggregated sample window of the counter fabric.
///
/// All counts cover the window `start_cycle..end_cycle` in base ticks; the
/// occupancy histogram is a point sample of every input VC taken at
/// `end_cycle`. Snapshots live in a bounded ring of the last *K* windows
/// ([`TelemetryConfig::with_history`]), so memory is fixed no matter how
/// long the run.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// First base tick covered by this window.
    pub start_cycle: u64,
    /// One past the last base tick covered (the sample point).
    pub end_cycle: u64,
    /// Histogram of input-VC buffer occupancy at the sample point:
    /// bin `i` counts VCs holding `i` flits, the last bin saturates.
    pub occupancy_hist: [u64; OCC_BINS],
    /// Flits granted switch traversal across all routers.
    pub grants: u64,
    /// Active-VC cycles stalled on an empty downstream credit pool.
    pub stall_no_credit: u64,
    /// Active-VC cycles stalled on a fenced (gated/waking/failed) port.
    pub stall_fenced: u64,
    /// VC-allocation waits where the escape class was exhausted.
    pub stall_escape_hold: u64,
    /// VC cycles waiting for route computation.
    pub stall_route_wait: u64,
    /// VC-allocation waits of any other cause.
    pub stall_va_wait: u64,
    /// Flits put on inter-router links.
    pub link_flits: u64,
    /// Flits ejected to local nodes.
    pub ejected_flits: u64,
    /// Outgoing flits carried on escape-class (class 0) VCs.
    pub escape_flits: u64,
    /// Outgoing flits carried on adaptive-class (class 1) VCs.
    pub adaptive_flits: u64,
    /// Routers that closed their power gate in the window.
    pub gate_sleeps: u64,
    /// Routers that completed a wakeup in the window.
    pub gate_wakes: u64,
    /// Routers gated at the sample point.
    pub gated_routers: u32,
    /// Fault transitions (component deaths and recoveries) in the window.
    pub fault_events: u64,
    /// Flits dropped by failed components in the window.
    pub fault_drops: u64,
    /// Event-horizon jumps taken in the window.
    pub horizon_jumps: u64,
    /// Base ticks absorbed by those jumps.
    pub horizon_skipped_cycles: u64,
    /// Longest single jump, in base ticks.
    pub max_horizon_jump: u64,
    /// Sum over full steps of the active-router worklist length.
    pub worklist_sum: u64,
    /// Sum over full steps of the pending-source worklist length.
    pub pending_source_sum: u64,
    /// Number of full (non-skipped) steps the sums cover.
    pub worklist_samples: u64,
}

impl TelemetrySnapshot {
    fn new(start_cycle: u64) -> Self {
        TelemetrySnapshot {
            start_cycle,
            end_cycle: start_cycle,
            occupancy_hist: [0; OCC_BINS],
            grants: 0,
            stall_no_credit: 0,
            stall_fenced: 0,
            stall_escape_hold: 0,
            stall_route_wait: 0,
            stall_va_wait: 0,
            link_flits: 0,
            ejected_flits: 0,
            escape_flits: 0,
            adaptive_flits: 0,
            gate_sleeps: 0,
            gate_wakes: 0,
            gated_routers: 0,
            fault_events: 0,
            fault_drops: 0,
            horizon_jumps: 0,
            horizon_skipped_cycles: 0,
            max_horizon_jump: 0,
            worklist_sum: 0,
            pending_source_sum: 0,
            worklist_samples: 0,
        }
    }

    /// Mean active-router worklist occupancy over the window's full steps,
    /// or `0.0` when every tick was skipped.
    pub fn mean_worklist_occupancy(&self) -> f64 {
        if self.worklist_samples == 0 {
            return 0.0;
        }
        self.worklist_sum as f64 / self.worklist_samples as f64
    }

    /// Total stalled-VC cycles across all causes.
    pub fn total_stalls(&self) -> u64 {
        self.stall_no_credit
            + self.stall_fenced
            + self.stall_escape_hold
            + self.stall_route_wait
            + self.stall_va_wait
    }
}

/// A typed event on the structured trace (see [`TraceEmitter`]).
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryEvent {
    /// Periodic island progress: the island's local cycle at a sample point
    /// (the bounded representation of the island fire stream — one counter
    /// event per island per sample window, not one per fire).
    IslandProgress {
        /// Island id.
        island: u32,
        /// Domain cycles completed so far.
        local_cycle: u64,
    },
    /// An island's clock was retuned.
    SetFrequency {
        /// Island id.
        island: u32,
        /// The new frequency in hertz (post-clamping).
        hz: f64,
    },
    /// A router closed its power gate.
    GateSleep {
        /// The gated router.
        node: u32,
    },
    /// A router completed its wakeup.
    GateWake {
        /// The woken router.
        node: u32,
    },
    /// A component failed (`link == true` for a link, else a router).
    FaultDown {
        /// The failed node (link faults: the node owning the port).
        node: u32,
        /// Whether the failed component is a link.
        link: bool,
    },
    /// A component recovered.
    FaultUp {
        /// The recovered node.
        node: u32,
        /// Whether the recovered component is a link.
        link: bool,
    },
    /// An event-horizon jump absorbed `ticks` base ticks starting at the
    /// event's timestamp.
    HorizonJump {
        /// Base ticks absorbed.
        ticks: u64,
    },
    /// A scalar counter sample (worklist occupancy, gated-router count, …).
    Counter {
        /// Counter track name.
        name: &'static str,
        /// Sampled value.
        value: f64,
    },
    /// A sweep point began executing (coordinator trace; timestamps are
    /// microseconds since the sweep started, not simulated cycles).
    SweepPointStart {
        /// The point's journal key.
        key: String,
        /// The executing worker.
        worker: u32,
    },
    /// A sweep point attempt failed and will be retried.
    SweepPointRetry {
        /// The point's journal key.
        key: String,
        /// The attempt number that failed (1-based).
        attempt: u32,
    },
    /// A sweep point finished (successfully or permanently failed).
    SweepPointComplete {
        /// The point's journal key.
        key: String,
        /// The executing worker.
        worker: u32,
        /// Whether the point produced a result.
        ok: bool,
    },
}

/// A [`TelemetryEvent`] with its timestamp (simulated base ticks in the
/// simulation trace; microseconds in the sweep-coordinator trace).
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    /// Event timestamp (see the type docs for the unit).
    pub ts: u64,
    /// The event.
    pub event: TelemetryEvent,
}

/// A bounded ring of typed trace events with a Chrome/Perfetto
/// `trace_events` JSON exporter.
///
/// The ring keeps the **last** `capacity` events (old events are evicted,
/// counted in [`dropped_events`](Self::dropped_events)), so memory stays
/// fixed for arbitrarily long runs. A capacity of `0` disables emission
/// entirely.
#[derive(Debug, Clone, Default)]
pub struct TraceEmitter {
    events: VecDeque<TimedEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceEmitter {
    /// Creates an emitter retaining the last `capacity` events.
    pub fn new(capacity: usize) -> Self {
        TraceEmitter { events: VecDeque::with_capacity(capacity.min(4096)), capacity, dropped: 0 }
    }

    /// Appends an event at timestamp `ts`, evicting the oldest event when
    /// the ring is full.
    pub fn emit(&mut self, ts: u64, event: TelemetryEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TimedEvent { ts, event });
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TimedEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no event is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted (or refused, at capacity 0) since construction.
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// Renders the retained events as Chrome/Perfetto `trace_events` JSON.
    ///
    /// Timestamps map 1:1 onto the viewer's microsecond axis (one simulated
    /// base tick — or one real microsecond for coordinator traces — per
    /// `ts` unit). Tracks: router-scoped events use the node id as `tid`,
    /// island-scoped counters get one counter track per island, sweep
    /// points use the worker id as `tid` with begin/end pairs. The output
    /// opens directly in `chrome://tracing` / [ui.perfetto.dev](https://ui.perfetto.dev).
    pub fn perfetto_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
        out.push_str(
            "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, \"ts\": 0, \
             \"args\": {\"name\": \"noc-sim\"}}",
        );
        for TimedEvent { ts, event } in &self.events {
            out.push_str(",\n");
            let line = match event {
                TelemetryEvent::IslandProgress { island, local_cycle } => format!(
                    "{{\"name\": \"island{island}_cycles\", \"ph\": \"C\", \"ts\": {ts}, \
                     \"pid\": 0, \"args\": {{\"value\": {local_cycle}}}}}"
                ),
                TelemetryEvent::SetFrequency { island, hz } => format!(
                    "{{\"name\": \"island{island}_freq_mhz\", \"ph\": \"C\", \"ts\": {ts}, \
                     \"pid\": 0, \"args\": {{\"value\": {:.3}}}}}",
                    hz / 1.0e6
                ),
                TelemetryEvent::GateSleep { node } => format!(
                    "{{\"name\": \"gate_sleep\", \"ph\": \"I\", \"ts\": {ts}, \"pid\": 0, \
                     \"tid\": {node}, \"s\": \"t\"}}"
                ),
                TelemetryEvent::GateWake { node } => format!(
                    "{{\"name\": \"gate_wake\", \"ph\": \"I\", \"ts\": {ts}, \"pid\": 0, \
                     \"tid\": {node}, \"s\": \"t\"}}"
                ),
                TelemetryEvent::FaultDown { node, link } => format!(
                    "{{\"name\": \"{}_down\", \"ph\": \"I\", \"ts\": {ts}, \"pid\": 0, \
                     \"tid\": {node}, \"s\": \"t\"}}",
                    if *link { "link" } else { "router" }
                ),
                TelemetryEvent::FaultUp { node, link } => format!(
                    "{{\"name\": \"{}_up\", \"ph\": \"I\", \"ts\": {ts}, \"pid\": 0, \
                     \"tid\": {node}, \"s\": \"t\"}}",
                    if *link { "link" } else { "router" }
                ),
                TelemetryEvent::HorizonJump { ticks } => format!(
                    "{{\"name\": \"horizon_jump\", \"ph\": \"X\", \"ts\": {ts}, \
                     \"dur\": {ticks}, \"pid\": 0, \"tid\": 0}}"
                ),
                TelemetryEvent::Counter { name, value } => format!(
                    "{{\"name\": \"{name}\", \"ph\": \"C\", \"ts\": {ts}, \"pid\": 0, \
                     \"args\": {{\"value\": {value}}}}}"
                ),
                TelemetryEvent::SweepPointStart { key, worker } => format!(
                    "{{\"name\": \"{}\", \"ph\": \"B\", \"ts\": {ts}, \"pid\": 0, \
                     \"tid\": {worker}}}",
                    escape_json(key)
                ),
                TelemetryEvent::SweepPointRetry { key, attempt } => format!(
                    "{{\"name\": \"retry {} (attempt {attempt})\", \"ph\": \"I\", \
                     \"ts\": {ts}, \"pid\": 0, \"tid\": 0, \"s\": \"p\"}}",
                    escape_json(key)
                ),
                TelemetryEvent::SweepPointComplete { key, worker, ok } => format!(
                    "{{\"name\": \"{}\", \"ph\": \"E\", \"ts\": {ts}, \"pid\": 0, \
                     \"tid\": {worker}, \"args\": {{\"ok\": {ok}}}}}",
                    escape_json(key)
                ),
            };
            out.push_str(&line);
        }
        out.push_str("\n]}\n");
        out
    }

    /// Writes [`perfetto_json`](Self::perfetto_json) to `path`.
    ///
    /// # Errors
    ///
    /// Any I/O error from creating or writing the file.
    pub fn write_perfetto(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.perfetto_json())
    }
}

fn escape_json(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// A per-router utilization matrix — the congestion-heatmap export consumed
/// by the figures pipeline.
///
/// `utilization[y * width + x]` is the router's mean flits-forwarded per
/// observed base tick (links plus ejections), so hot routers stand out and
/// idle corners read `0.0`.
#[derive(Debug, Clone, PartialEq)]
pub struct CongestionHeatmap {
    /// Grid width in routers.
    pub width: usize,
    /// Grid height in routers.
    pub height: usize,
    /// Row-major per-router utilization (flits per base tick).
    pub utilization: Vec<f64>,
}

impl CongestionHeatmap {
    /// The hottest router's utilization (or `0.0` for an empty map).
    pub fn peak(&self) -> f64 {
        self.utilization.iter().copied().fold(0.0, f64::max)
    }

    /// Renders the heatmap as a JSON object
    /// (`{"width": .., "height": .., "utilization": [[row0], [row1], ..]}`).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(32 + self.utilization.len() * 10);
        out.push_str(&format!(
            "{{\"width\": {}, \"height\": {}, \"utilization\": [",
            self.width, self.height
        ));
        for y in 0..self.height {
            if y > 0 {
                out.push_str(", ");
            }
            out.push('[');
            for x in 0..self.width {
                if x > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{:.6}", self.utilization[y * self.width + x]));
            }
            out.push(']');
        }
        out.push_str("]}\n");
        out
    }

    /// Renders the heatmap as CSV, one grid row per line.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.utilization.len() * 10);
        for y in 0..self.height {
            for x in 0..self.width {
                if x > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{:.6}", self.utilization[y * self.width + x]));
            }
            out.push('\n');
        }
        out
    }
}

/// Wall-clock profile of the stepping engine (collected only under
/// [`TelemetryConfig::with_profile`]; wall-clock reads never feed back into
/// simulated behaviour).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineProfile {
    /// Full steps executed.
    pub steps: u64,
    /// Nanoseconds in the pre-pipeline phases (clocks, gating, faults,
    /// generation, credit delivery).
    pub pre_ns: u64,
    /// Nanoseconds in the router-pipeline phase (serial form).
    pub pipeline_ns: u64,
    /// Nanoseconds in the post-pipeline phases (deliveries, injection).
    pub post_ns: u64,
    /// Nanoseconds spent inside the event-horizon skip routine.
    pub skip_ns: u64,
    /// Nanoseconds whole dense reference steps took (the dense loop is not
    /// phase-split).
    pub dense_step_ns: u64,
    /// Per-worker nanoseconds spent in the parallel island-pipeline phase —
    /// the island-thread balance (empty unless parallel stepping ran).
    pub worker_busy_ns: Vec<u64>,
}

impl EngineProfile {
    /// Total attributed nanoseconds across the serial phases.
    pub fn total_ns(&self) -> u64 {
        self.pre_ns + self.pipeline_ns + self.post_ns + self.skip_ns + self.dense_step_ns
    }

    /// Imbalance of the parallel island workers: slowest worker's busy time
    /// over the mean (1.0 = perfectly balanced; `None` without workers).
    pub fn worker_imbalance(&self) -> Option<f64> {
        let busy: Vec<u64> = self.worker_busy_ns.iter().copied().filter(|&n| n > 0).collect();
        if busy.is_empty() {
            return None;
        }
        let max = *busy.iter().max().expect("non-empty") as f64;
        let mean = busy.iter().sum::<u64>() as f64 / busy.len() as f64;
        Some(if mean > 0.0 { max / mean } else { 1.0 })
    }

    pub(crate) fn ensure_workers(&mut self, workers: usize) {
        if self.worker_busy_ns.len() < workers {
            self.worker_busy_ns.resize(workers, 0);
        }
    }
}

/// Engine-level counters accumulated between snapshot samples.
#[derive(Debug, Default, Clone)]
struct WindowAccum {
    gate_sleeps: u64,
    gate_wakes: u64,
    fault_events: u64,
    horizon_jumps: u64,
    horizon_skipped: u64,
    max_horizon_jump: u64,
    worklist_sum: u64,
    pending_source_sum: u64,
    worklist_samples: u64,
}

/// The installed telemetry layer of one simulation: per-router probes, the
/// snapshot ring, the event trace and the engine profile. Obtained via
/// [`NocSimulation::telemetry`](crate::NocSimulation::telemetry) /
/// [`telemetry_mut`](crate::NocSimulation::telemetry_mut).
#[derive(Debug)]
pub struct TelemetryState {
    cfg: TelemetryConfig,
    pub(crate) routers: Vec<RouterProbe>,
    win: WindowAccum,
    window_start_cycle: u64,
    pub(crate) next_sample_at: u64,
    snapshots: VecDeque<TelemetrySnapshot>,
    /// Cumulative per-router forwarded flits since install (heatmap source).
    cum_flits: Vec<u64>,
    /// Base tick at install (heatmap utilization denominator start).
    install_cycle: u64,
    emitter: TraceEmitter,
    profile: EngineProfile,
}

impl TelemetryState {
    pub(crate) fn new(cfg: TelemetryConfig, nodes: usize, now: u64) -> Self {
        let cfg = TelemetryConfig {
            sample_interval: cfg.sample_interval.max(1),
            history: cfg.history.max(1),
            ..cfg
        };
        TelemetryState {
            routers: vec![RouterProbe::default(); nodes],
            win: WindowAccum::default(),
            window_start_cycle: now,
            next_sample_at: now + cfg.sample_interval,
            snapshots: VecDeque::with_capacity(cfg.history),
            cum_flits: vec![0; nodes],
            install_cycle: now,
            emitter: TraceEmitter::new(cfg.trace_capacity),
            profile: EngineProfile::default(),
            cfg,
        }
    }

    /// The configuration the layer was installed with.
    pub fn config(&self) -> &TelemetryConfig {
        &self.cfg
    }

    /// The retained snapshot ring, oldest first.
    pub fn snapshots(&self) -> impl Iterator<Item = &TelemetrySnapshot> {
        self.snapshots.iter()
    }

    /// The most recent completed snapshot, if any window completed yet.
    pub fn latest_snapshot(&self) -> Option<&TelemetrySnapshot> {
        self.snapshots.back()
    }

    /// Drains the snapshot ring (oldest first), leaving it empty.
    pub fn take_snapshots(&mut self) -> Vec<TelemetrySnapshot> {
        self.snapshots.drain(..).collect()
    }

    /// The structured event trace.
    pub fn events(&self) -> &TraceEmitter {
        &self.emitter
    }

    /// Mutable access to the event trace (e.g. to export and clear it, or
    /// to splice in application-level events).
    pub fn events_mut(&mut self) -> &mut TraceEmitter {
        &mut self.emitter
    }

    /// The engine profile (all-zero unless profiling was enabled).
    pub fn profile(&self) -> &EngineProfile {
        &self.profile
    }

    pub(crate) fn profiling(&self) -> bool {
        self.cfg.profile
    }

    pub(crate) fn profile_mut(&mut self) -> &mut EngineProfile {
        &mut self.profile
    }

    pub(crate) fn record_horizon_jump(&mut self, start_cycle: u64, ticks: u64) {
        self.win.horizon_jumps += 1;
        self.win.horizon_skipped += ticks;
        self.win.max_horizon_jump = self.win.max_horizon_jump.max(ticks);
        self.emitter.emit(start_cycle, TelemetryEvent::HorizonJump { ticks });
    }

    pub(crate) fn tick_worklist(&mut self, active: usize, pending: usize) {
        self.win.worklist_sum += active as u64;
        self.win.pending_source_sum += pending as u64;
        self.win.worklist_samples += 1;
    }

    pub(crate) fn on_gate_transition(&mut self, node: u32, to_sleep: bool, now: u64) {
        if to_sleep {
            self.win.gate_sleeps += 1;
            self.emitter.emit(now, TelemetryEvent::GateSleep { node });
        } else {
            self.win.gate_wakes += 1;
            self.emitter.emit(now, TelemetryEvent::GateWake { node });
        }
    }

    pub(crate) fn on_fault_transition(&mut self, node: u32, link: bool, down: bool, now: u64) {
        self.win.fault_events += 1;
        let event = if down {
            TelemetryEvent::FaultDown { node, link }
        } else {
            TelemetryEvent::FaultUp { node, link }
        };
        self.emitter.emit(now, event);
    }

    pub(crate) fn on_set_frequency(&mut self, island: u32, hz: f64, now: u64) {
        self.emitter.emit(now, TelemetryEvent::SetFrequency { island, hz });
    }

    /// Closes the current sample window: aggregates the per-router probes
    /// and engine counters into a [`TelemetrySnapshot`], point-samples the
    /// occupancy histogram, pushes the snapshot into the ring (evicting the
    /// oldest beyond the history bound) and resets the accumulators.
    pub(crate) fn sample(
        &mut self,
        routers: &[crate::router::Router],
        gated_routers: usize,
        island_cycles: &[u64],
        now: u64,
    ) {
        let mut snap = TelemetrySnapshot::new(self.window_start_cycle);
        snap.end_cycle = now;
        for (probe, cum) in self.routers.iter_mut().zip(self.cum_flits.iter_mut()) {
            snap.grants += probe.grants;
            snap.ejected_flits += probe.ejected;
            snap.escape_flits += probe.escape_flits;
            snap.adaptive_flits += probe.adaptive_flits;
            snap.stall_no_credit += probe.stalls.no_credit;
            snap.stall_fenced += probe.stalls.fenced;
            snap.stall_escape_hold += probe.stalls.escape_hold;
            snap.stall_route_wait += probe.stalls.route_wait;
            snap.stall_va_wait += probe.stalls.va_wait;
            snap.fault_drops += probe.dropped;
            let total = probe.total_link_flits();
            snap.link_flits += total - probe.ejected;
            *cum += total;
            probe.reset();
        }
        for router in routers {
            let vcs = router.virtual_channels();
            for port in 0..PORT_COUNT {
                for vc in 0..vcs {
                    let occ = router.input_vc_occupancy(port, vc).min(OCC_BINS - 1);
                    snap.occupancy_hist[occ] += 1;
                }
            }
        }
        snap.gate_sleeps = self.win.gate_sleeps;
        snap.gate_wakes = self.win.gate_wakes;
        snap.gated_routers = gated_routers as u32;
        snap.fault_events = self.win.fault_events;
        snap.horizon_jumps = self.win.horizon_jumps;
        snap.horizon_skipped_cycles = self.win.horizon_skipped;
        snap.max_horizon_jump = self.win.max_horizon_jump;
        snap.worklist_sum = self.win.worklist_sum;
        snap.pending_source_sum = self.win.pending_source_sum;
        snap.worklist_samples = self.win.worklist_samples;
        if snap.worklist_samples > 0 {
            self.emitter.emit(
                now,
                TelemetryEvent::Counter {
                    name: "active_routers",
                    value: snap.mean_worklist_occupancy(),
                },
            );
        }
        if gated_routers > 0 || snap.gate_sleeps > 0 || snap.gate_wakes > 0 {
            self.emitter.emit(
                now,
                TelemetryEvent::Counter { name: "gated_routers", value: gated_routers as f64 },
            );
        }
        for (island, &cycle) in island_cycles.iter().enumerate() {
            self.emitter.emit(
                now,
                TelemetryEvent::IslandProgress { island: island as u32, local_cycle: cycle },
            );
        }
        self.win = WindowAccum::default();
        self.window_start_cycle = now;
        self.next_sample_at = now + self.cfg.sample_interval;
        if self.snapshots.len() == self.cfg.history {
            self.snapshots.pop_front();
        }
        self.snapshots.push_back(snap);
    }

    /// Builds the congestion heatmap over everything observed since install:
    /// per-router forwarded flits (completed sample windows plus the open
    /// one) divided by elapsed base ticks.
    pub(crate) fn heatmap(&self, width: usize, height: usize, now: u64) -> CongestionHeatmap {
        let cycles = (now - self.install_cycle).max(1) as f64;
        let utilization = self
            .cum_flits
            .iter()
            .zip(self.routers.iter())
            .map(|(&cum, probe)| (cum + probe.total_link_flits()) as f64 / cycles)
            .collect();
        CongestionHeatmap { width, height, utilization }
    }
}

/// A one-call bundle of the simulation's diagnostic counters — everything a
/// monitoring loop or example used to collect from five separate getters
/// ([`NocSimulation::counters`](crate::NocSimulation::counters)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimCounters {
    /// NoC base ticks simulated so far.
    pub cycle: u64,
    /// Simulated wall-clock time, picoseconds.
    pub wall_time_ps: f64,
    /// Base ticks absorbed by event-horizon jumps.
    pub skipped_cycles: u64,
    /// Routers currently holding buffered flits.
    pub active_routers: usize,
    /// Routers currently power-gated.
    pub gated_routers: usize,
    /// Flits in flight on links and injection channels.
    pub in_flight_flits: usize,
    /// Credits in flight on credit-return channels.
    pub in_flight_credits: usize,
    /// Flits waiting in source queues.
    pub queued_source_flits: usize,
    /// Flits buffered inside routers.
    pub buffered_network_flits: usize,
    /// Flits generated since the start of the run.
    pub flits_generated: u64,
    /// Flits delivered to sinks since the start of the run.
    pub flits_received: u64,
    /// Flits dropped by failed components since the start of the run.
    pub flits_dropped: u64,
    /// Packets fully delivered since the start of the run.
    pub packets_delivered: u64,
    /// Fraction of `(source, destination)` pairs currently connected.
    pub reachable_pairs: f64,
}

impl SimCounters {
    /// Flits currently anywhere in the system (queued, buffered or flying)
    /// — the in-transit term of the conservation ledger
    /// `generated = received + in_transit + dropped`.
    pub fn in_transit_flits(&self) -> u64 {
        self.queued_source_flits as u64
            + self.buffered_network_flits as u64
            + self.in_flight_flits as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emitter_ring_is_bounded_and_counts_evictions() {
        let mut e = TraceEmitter::new(3);
        for i in 0..5u64 {
            e.emit(i, TelemetryEvent::HorizonJump { ticks: i });
        }
        assert_eq!(e.len(), 3);
        assert_eq!(e.dropped_events(), 2);
        let ts: Vec<u64> = e.events().map(|ev| ev.ts).collect();
        assert_eq!(ts, vec![2, 3, 4], "oldest events evicted first");
        let mut off = TraceEmitter::new(0);
        off.emit(1, TelemetryEvent::HorizonJump { ticks: 1 });
        assert!(off.is_empty());
        assert_eq!(off.dropped_events(), 1);
    }

    #[test]
    fn perfetto_export_contains_every_event_shape() {
        let mut e = TraceEmitter::new(64);
        e.emit(10, TelemetryEvent::IslandProgress { island: 1, local_cycle: 10 });
        e.emit(11, TelemetryEvent::SetFrequency { island: 0, hz: 5.0e8 });
        e.emit(12, TelemetryEvent::GateSleep { node: 7 });
        e.emit(13, TelemetryEvent::GateWake { node: 7 });
        e.emit(14, TelemetryEvent::FaultDown { node: 3, link: true });
        e.emit(15, TelemetryEvent::FaultUp { node: 3, link: false });
        e.emit(16, TelemetryEvent::HorizonJump { ticks: 40 });
        e.emit(17, TelemetryEvent::Counter { name: "active_routers", value: 2.5 });
        e.emit(18, TelemetryEvent::SweepPointStart { key: "op1|f=1".into(), worker: 2 });
        e.emit(19, TelemetryEvent::SweepPointRetry { key: "op1|f=1".into(), attempt: 1 });
        e.emit(20, TelemetryEvent::SweepPointComplete { key: "op1|f=1".into(), worker: 2, ok: true });
        let json = e.perfetto_json();
        assert!(json.contains("\"traceEvents\""));
        for needle in [
            "island1_cycles",
            "island0_freq_mhz",
            "gate_sleep",
            "gate_wake",
            "link_down",
            "router_up",
            "horizon_jump",
            "\"dur\": 40",
            "active_routers",
            "\"ph\": \"B\"",
            "\"ph\": \"E\"",
            "\"ph\": \"I\"",
            "\"ph\": \"C\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn heatmap_renders_json_and_csv_row_major() {
        let map = CongestionHeatmap {
            width: 2,
            height: 2,
            utilization: vec![0.0, 0.25, 0.5, 1.0],
        };
        assert_eq!(map.peak(), 1.0);
        let json = map.to_json();
        assert!(json.starts_with("{\"width\": 2, \"height\": 2, \"utilization\": [["));
        assert!(json.contains("[0.500000, 1.000000]"));
        let csv = map.to_csv();
        assert_eq!(csv, "0.000000,0.250000\n0.500000,1.000000\n");
    }

    #[test]
    fn profile_imbalance_is_max_over_mean() {
        let mut p = EngineProfile::default();
        assert_eq!(p.worker_imbalance(), None);
        p.worker_busy_ns = vec![100, 300];
        let imb = p.worker_imbalance().unwrap();
        assert!((imb - 1.5).abs() < 1e-12);
    }
}
