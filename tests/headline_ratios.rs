//! Integration test: the paper's headline claims hold end-to-end.
//!
//! Uses a reduced-size mesh and simulation budget so the test stays fast, but
//! exercises the full stack: traffic generation → cycle-accurate simulation →
//! DVFS policy → technology/power model → trade-off summary.

use noc_dvfs::experiments::{compare_policies_synthetic, ExperimentQuality};
use noc_dvfs::{ClosedLoopConfig, TradeOffSummary};
use noc_sim::{NetworkConfig, TrafficPattern};

fn reduced_quality() -> ExperimentQuality {
    ExperimentQuality {
        loop_cfg: ClosedLoopConfig {
            control_period_cycles: 1_200,
            warmup_intervals: 3,
            measure_intervals: 5,
            max_settle_intervals: 40,
            settle_tolerance: 0.006,
        },
        load_points: 3,
        saturation_probe_cycles: 5_000,
        seed: 99,
    }
}

fn reduced_net() -> NetworkConfig {
    NetworkConfig::builder()
        .mesh(4, 4)
        .virtual_channels(4)
        .buffer_depth(4)
        .packet_length(10)
        .build()
        .expect("valid reduced configuration")
}

#[test]
fn dvfs_policies_keep_the_paper_ordering_under_uniform_traffic() {
    let quality = reduced_quality();
    let net = reduced_net();
    // The paper's regime has a *tight* delay target: 150 ns is roughly the
    // delay of its baseline network at the minimum frequency. The reduced
    // 4x4 network used here has much lower intrinsic latencies, so the
    // equivalent tight target is ~70 ns; with the default 150 ns target DMSD
    // would legitimately slow down below RMSD (the target is too lenient to
    // exercise the trade-off the paper describes).
    let saturation = noc_dvfs::find_saturation_rate(
        &net,
        TrafficPattern::Uniform,
        quality.saturation_probe_cycles,
        quality.seed,
    );
    let lambda_max = 0.9 * saturation;
    let policies = vec![
        noc_dvfs::PolicyKind::NoDvfs,
        noc_dvfs::PolicyKind::Rmsd(noc_dvfs::RmsdConfig::with_lambda_max(lambda_max)),
        noc_dvfs::PolicyKind::Dmsd(noc_dvfs::DmsdConfig::with_target_ns(70.0)),
    ];
    let comparison = compare_policies_synthetic(
        "uniform (reduced)",
        &net,
        TrafficPattern::Uniform,
        &quality,
        Some(policies),
    );
    let no_dvfs = comparison.curve("No-DVFS").expect("baseline curve");
    let rmsd = comparison.curve("RMSD").expect("rmsd curve");
    let dmsd = comparison.curve("DMSD").expect("dmsd curve");

    // The mid-load point is where the paper quotes its ratios.
    let mid = comparison.lambda_max * 0.5;
    let b = &no_dvfs.nearest(mid).result;
    let r = &rmsd.nearest(mid).result;
    let d = &dmsd.nearest(mid).result;

    // Power ordering: RMSD <= DMSD <= No-DVFS.
    assert!(r.power_mw <= d.power_mw * 1.02, "RMSD must be the most frugal policy");
    assert!(d.power_mw <= b.power_mw * 1.02, "DMSD must not exceed the no-DVFS power");
    // Both DVFS policies must save a substantial amount of power at mid load.
    assert!(
        b.power_mw / r.power_mw > 1.5,
        "RMSD should save well over 1.5x at mid load (got {:.2}x)",
        b.power_mw / r.power_mw
    );
    // Delay ordering: No-DVFS <= DMSD <= RMSD.
    assert!(b.avg_delay_ns <= d.avg_delay_ns * 1.05, "no-DVFS has the lowest delay");
    assert!(
        d.avg_delay_ns < r.avg_delay_ns,
        "DMSD ({:.0} ns) must beat RMSD ({:.0} ns) on delay",
        d.avg_delay_ns,
        r.avg_delay_ns
    );

    // The trade-off summary agrees (and is finite / well-formed).
    let summary = TradeOffSummary::at_load(mid, no_dvfs, rmsd, dmsd);
    assert!(summary.power_ratio_nodvfs_over_rmsd.is_finite());
    assert!(summary.delay_ratio_rmsd_over_dmsd > 1.0);
}

#[test]
fn rmsd_delay_in_seconds_is_non_monotonic_but_latency_in_cycles_is_flat() {
    // The paper's Fig. 2 observation: with RMSD the latency measured in
    // network cycles stays roughly constant between λ_min and λ_max while the
    // delay measured in nanoseconds first rises (frequency pinned at F_min)
    // and then falls (frequency grows faster than the latency).
    let quality = ExperimentQuality {
        load_points: 5,
        ..reduced_quality()
    };
    let comparison = compare_policies_synthetic(
        "uniform (reduced, rmsd shape)",
        &reduced_net(),
        TrafficPattern::Uniform,
        &quality,
        None,
    );
    let rmsd = comparison.curve("RMSD").expect("rmsd curve");
    let delays = rmsd.delays_ns();
    let freqs = rmsd.frequencies_ghz();

    // Frequency is non-decreasing with load (Eq. 2 with clipping).
    for pair in freqs.windows(2) {
        assert!(pair[1] >= pair[0] - 0.02, "RMSD frequency must not drop as the load grows");
    }
    // The delay peak is interior: the maximum delay is higher than the delay
    // at the two extremes of the sweep (non-monotonic shape).
    let peak = delays.iter().cloned().fold(f64::MIN, f64::max);
    assert!(
        peak > delays[0] * 1.2 && peak > *delays.last().unwrap() * 1.2,
        "RMSD delay must peak in the interior of the load range: {delays:?}"
    );
}

#[test]
fn dmsd_tracks_its_delay_target_where_reachable() {
    let quality = reduced_quality();
    let comparison = compare_policies_synthetic(
        "uniform (reduced, dmsd target)",
        &reduced_net(),
        TrafficPattern::Uniform,
        &quality,
        None,
    );
    let dmsd = comparison.curve("DMSD").expect("dmsd curve");
    let no_dvfs = comparison.curve("No-DVFS").expect("baseline curve");
    for (d, b) in dmsd.points.iter().zip(no_dvfs.points.iter()) {
        // Wherever even the full-speed network cannot reach 150 ns the target
        // is unreachable; elsewhere DMSD must land in a band around it
        // (between the no-DVFS delay and ~1.6x the target).
        if b.result.avg_delay_ns < 150.0 {
            assert!(
                d.result.avg_delay_ns <= 150.0 * 1.6,
                "DMSD delay {:.0} ns too far above the 150 ns target at load {:.3}",
                d.result.avg_delay_ns,
                d.load
            );
        }
    }
}
