//! Latency, delay and throughput statistics.

use crate::flit::PacketId;
use serde::{Deserialize, Serialize};

/// Completion record of one packet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PacketRecord {
    /// Identifier of the packet.
    pub packet_id: PacketId,
    /// Source node.
    pub src: usize,
    /// Destination node.
    pub dst: usize,
    /// Number of flits in the packet.
    pub flits: usize,
    /// Latency from creation to tail ejection, in NoC clock cycles.
    pub latency_cycles: u64,
    /// Delay from creation to tail ejection, in picoseconds of wall-clock time.
    pub delay_ps: f64,
    /// Router hops traversed by the head flit.
    pub hops: u32,
}

/// Running aggregate of packet statistics.
///
/// Two aggregates are kept by the simulation: the *total* since the last
/// reset (used to report an experiment's result after warm-up) and a
/// *window* aggregate that DVFS controllers consume periodically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Packets completed.
    pub packets: u64,
    /// Flits ejected as part of completed packets.
    pub flits: u64,
    /// Sum of packet latencies in cycles.
    pub latency_cycles_sum: u64,
    /// Sum of packet delays in picoseconds.
    pub delay_ps_sum: f64,
    /// Maximum packet latency observed, in cycles.
    pub max_latency_cycles: u64,
    /// Maximum packet delay observed, in picoseconds.
    pub max_delay_ps: f64,
    /// Sum of hop counts.
    pub hops_sum: u64,
}

impl SimStats {
    /// An empty aggregate.
    pub fn new() -> Self {
        SimStats::default()
    }

    /// Folds one completed packet into the aggregate.
    pub fn record(&mut self, rec: &PacketRecord) {
        self.packets += 1;
        self.flits += rec.flits as u64;
        self.latency_cycles_sum += rec.latency_cycles;
        self.delay_ps_sum += rec.delay_ps;
        self.max_latency_cycles = self.max_latency_cycles.max(rec.latency_cycles);
        if rec.delay_ps > self.max_delay_ps {
            self.max_delay_ps = rec.delay_ps;
        }
        self.hops_sum += rec.hops as u64;
    }

    /// Average packet latency in NoC cycles, or `None` if no packet completed.
    pub fn avg_latency_cycles(&self) -> Option<f64> {
        (self.packets > 0).then(|| self.latency_cycles_sum as f64 / self.packets as f64)
    }

    /// Average packet delay in nanoseconds, or `None` if no packet completed.
    pub fn avg_delay_ns(&self) -> Option<f64> {
        (self.packets > 0).then(|| self.delay_ps_sum / self.packets as f64 / 1.0e3)
    }

    /// Average hop count, or `None` if no packet completed.
    pub fn avg_hops(&self) -> Option<f64> {
        (self.packets > 0).then(|| self.hops_sum as f64 / self.packets as f64)
    }

    /// Merges another aggregate into this one.
    pub fn merge(&mut self, other: &SimStats) {
        self.packets += other.packets;
        self.flits += other.flits;
        self.latency_cycles_sum += other.latency_cycles_sum;
        self.delay_ps_sum += other.delay_ps_sum;
        self.max_latency_cycles = self.max_latency_cycles.max(other.max_latency_cycles);
        if other.max_delay_ps > self.max_delay_ps {
            self.max_delay_ps = other.max_delay_ps;
        }
        self.hops_sum += other.hops_sum;
    }
}

#[cfg(feature = "snapshot")]
impl SimStats {
    /// Encodes the aggregate for a simulation checkpoint.
    pub(crate) fn save_state(&self, w: &mut crate::snapshot::SnapWriter) {
        w.put_u64(self.packets);
        w.put_u64(self.flits);
        w.put_u64(self.latency_cycles_sum);
        w.put_f64(self.delay_ps_sum);
        w.put_u64(self.max_latency_cycles);
        w.put_f64(self.max_delay_ps);
        w.put_u64(self.hops_sum);
    }

    /// Restores the aggregate from a checkpoint.
    pub(crate) fn load_state(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        self.packets = r.read_u64()?;
        self.flits = r.read_u64()?;
        self.latency_cycles_sum = r.read_u64()?;
        self.delay_ps_sum = r.read_f64()?;
        self.max_latency_cycles = r.read_u64()?;
        self.max_delay_ps = r.read_f64()?;
        self.hops_sum = r.read_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(latency: u64, delay_ns: f64) -> PacketRecord {
        PacketRecord {
            packet_id: PacketId::new(0),
            src: 0,
            dst: 1,
            flits: 4,
            latency_cycles: latency,
            delay_ps: delay_ns * 1e3,
            hops: 2,
        }
    }

    #[test]
    fn empty_stats_have_no_averages() {
        let s = SimStats::new();
        assert_eq!(s.avg_latency_cycles(), None);
        assert_eq!(s.avg_delay_ns(), None);
        assert_eq!(s.avg_hops(), None);
    }

    #[test]
    fn averages_and_maxima() {
        let mut s = SimStats::new();
        s.record(&rec(10, 20.0));
        s.record(&rec(30, 60.0));
        assert_eq!(s.packets, 2);
        assert_eq!(s.flits, 8);
        assert_eq!(s.avg_latency_cycles(), Some(20.0));
        assert_eq!(s.avg_delay_ns(), Some(40.0));
        assert_eq!(s.max_latency_cycles, 30);
        assert_eq!(s.max_delay_ps, 60.0e3);
        assert_eq!(s.avg_hops(), Some(2.0));
    }

    #[test]
    fn merge_combines_aggregates() {
        let mut a = SimStats::new();
        a.record(&rec(10, 10.0));
        let mut b = SimStats::new();
        b.record(&rec(20, 20.0));
        b.record(&rec(30, 30.0));
        a.merge(&b);
        assert_eq!(a.packets, 3);
        assert_eq!(a.avg_latency_cycles(), Some(20.0));
        assert_eq!(a.max_latency_cycles, 30);
    }
}
