//! Offline stand-in for `criterion`.
//!
//! Implements the small API subset the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, benchmark groups with
//! `sample_size` / `measurement_time` / `warm_up_time` / `throughput`,
//! `Bencher::iter` and `Bencher::iter_batched`) on top of plain
//! `std::time::Instant` timing. No statistics beyond mean ± spread are
//! computed — the point is trend tracking, not rigorous analysis.
//!
//! Environment knobs:
//! * `NOC_BENCH_QUICK=1` — shrink warm-up/measurement times ~10× (CI smoke).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup cost (ignored by the shim's timing
/// model beyond excluding setup from the measured region).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-run setup for every routine call.
    PerIteration,
}

#[derive(Debug, Clone, Copy)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Config {
    fn new() -> Self {
        let quick = std::env::var("NOC_BENCH_QUICK").map(|v| v == "1").unwrap_or(false);
        if quick {
            Config {
                sample_size: 3,
                measurement_time: Duration::from_millis(300),
                warm_up_time: Duration::from_millis(100),
            }
        } else {
            Config {
                sample_size: 10,
                measurement_time: Duration::from_secs(3),
                warm_up_time: Duration::from_secs(1),
            }
        }
    }

    fn scaled(&self, d: Duration) -> Duration {
        if std::env::var("NOC_BENCH_QUICK").map(|v| v == "1").unwrap_or(false) {
            d / 10
        } else {
            d
        }
    }
}

/// One measured sample set for a routine.
#[derive(Debug, Clone, Copy, Default)]
pub struct Measurement {
    /// Mean wall-clock time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Fastest observed iteration, nanoseconds.
    pub min_ns: f64,
    /// Slowest observed iteration, nanoseconds.
    pub max_ns: f64,
    /// Total iterations measured.
    pub iters: u64,
}

/// Times one routine invocation cycle; handed to the bench closure.
#[derive(Debug)]
pub struct Bencher {
    cfg: Config,
    measurement: Measurement,
}

impl Bencher {
    fn new(cfg: Config) -> Self {
        Bencher { cfg, measurement: Measurement::default() }
    }

    /// Measures `routine` repeatedly (criterion's `Bencher::iter`).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.iter_batched(|| (), |()| routine(), BatchSize::PerIteration);
    }

    /// Measures `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement (criterion's `Bencher::iter_batched`).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up phase: run untimed until the warm-up budget is spent.
        let warm_start = Instant::now();
        loop {
            let input = setup();
            black_box(routine(input));
            if warm_start.elapsed() >= self.cfg.warm_up_time {
                break;
            }
        }

        // Measurement phase: collect samples until the measurement budget is
        // spent, with at least `sample_size` samples.
        let mut samples: Vec<f64> = Vec::new();
        let measure_start = Instant::now();
        while samples.len() < self.cfg.sample_size
            || measure_start.elapsed() < self.cfg.measurement_time
        {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            samples.push(t0.elapsed().as_nanos() as f64);
            if samples.len() >= 4 * self.cfg.sample_size
                && measure_start.elapsed() >= self.cfg.measurement_time
            {
                break;
            }
            // Hard cap so pathological routines cannot hang the harness.
            if samples.len() >= 100_000 {
                break;
            }
        }

        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(0.0f64, f64::max);
        self.measurement =
            Measurement { mean_ns: mean, min_ns: min, max_ns: max, iters: samples.len() as u64 };
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1.0e9 {
        format!("{:.3} s", ns / 1.0e9)
    } else if ns >= 1.0e6 {
        format!("{:.3} ms", ns / 1.0e6)
    } else if ns >= 1.0e3 {
        format!("{:.3} µs", ns / 1.0e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn report(full_name: &str, m: &Measurement, throughput: Option<Throughput>) {
    let mut line = format!(
        "{full_name:<55} time: [{} .. {} .. {}]  ({} samples)",
        format_ns(m.min_ns),
        format_ns(m.mean_ns),
        format_ns(m.max_ns),
        m.iters
    );
    if let Some(tp) = throughput {
        let per_sec = match tp {
            Throughput::Elements(n) => format!("{:.0} elem/s", n as f64 / (m.mean_ns / 1.0e9)),
            Throughput::Bytes(n) => format!("{:.0} B/s", n as f64 / (m.mean_ns / 1.0e9)),
        };
        line.push_str(&format!("  thrpt: {per_sec}"));
    }
    println!("{line}");
}

/// A named collection of related benchmarks (criterion's `BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    cfg: Config,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the target number of samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n.max(1);
        self
    }

    /// Sets the measurement time budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.measurement_time = self.cfg.scaled(d);
        self
    }

    /// Sets the warm-up time budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.warm_up_time = self.cfg.scaled(d);
        self
    }

    /// Annotates the group with a per-iteration throughput.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Runs one named benchmark in this group.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: S,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.cfg);
        f(&mut bencher);
        let full = format!("{}/{}", self.name, name.into());
        report(&full, &bencher.measurement, self.throughput);
        self
    }

    /// Ends the group (printing happens eagerly, so this is a marker).
    pub fn finish(self) {}
}

/// Top-level benchmark driver (criterion's `Criterion`).
#[derive(Debug)]
pub struct Criterion {
    cfg: Config,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { cfg: Config::new() }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), cfg: self.cfg, throughput: None }
    }

    /// Runs one stand-alone named benchmark.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: S,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.cfg);
        f(&mut bencher);
        report(&name.into(), &bencher.measurement, None);
        self
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("NOC_BENCH_QUICK", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(10))
            .throughput(Throughput::Elements(100));
        group.bench_function("spin", |b| {
            b.iter(|| (0..1000u64).sum::<u64>());
        });
        group.finish();
    }
}
