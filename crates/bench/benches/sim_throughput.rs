//! Raw simulator throughput: cycles simulated per second for the paper
//! baseline and the largest (8×8) mesh, at light and heavy load. These are
//! the numbers that determine how long every experiment of the paper takes to
//! regenerate.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use noc_dvfs::experiments::{fig2_rmsd_vs_nodvfs, ExperimentQuality};
use noc_sim::{NetworkConfig, NocSimulation, SyntheticTraffic, TrafficPattern};
use std::time::Duration;

fn bench_sim_throughput(c: &mut Criterion) {
    let cycles: u64 = 2_000;
    let mut group = c.benchmark_group("sim_throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(cycles));

    let cases = [
        ("5x5_paper_baseline_light_load", NetworkConfig::paper_baseline(), 0.05),
        ("5x5_paper_baseline_heavy_load", NetworkConfig::paper_baseline(), 0.35),
        (
            "8x8_mesh_light_load",
            NetworkConfig::builder().mesh(8, 8).build().unwrap(),
            0.05,
        ),
        (
            "8x8_mesh_heavy_load",
            NetworkConfig::builder().mesh(8, 8).build().unwrap(),
            0.35,
        ),
    ];
    for (name, cfg, rate) in cases {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let traffic =
                        SyntheticTraffic::new(TrafficPattern::Uniform, rate, cfg.packet_length());
                    NocSimulation::new(cfg.clone(), Box::new(traffic), 1)
                },
                |mut sim| {
                    sim.run_cycles(cycles);
                    sim
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// End-to-end wall-clock time of a quick-quality Fig. 2-style regeneration:
/// saturation search plus a (policy × load) sweep through the closed loop.
/// This is the number that bounds experiment turnaround.
fn bench_figure_regeneration(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_regeneration");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8))
        .warm_up_time(Duration::from_secs(1));
    group.bench_function("fig2_quick_quality", |b| {
        b.iter(|| fig2_rmsd_vs_nodvfs(&ExperimentQuality::quick()))
    });
    group.finish();
}

criterion_group!(benches, bench_sim_throughput, bench_figure_regeneration);
criterion_main!(benches);
