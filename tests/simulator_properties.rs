//! Property-based tests of the simulation substrate, spanning `noc-sim` and
//! the clock/latency semantics the DVFS study depends on.

use noc_sim::{
    Hertz, NetworkConfig, NocSimulation, SyntheticTraffic, TrafficPattern, TrafficSpec,
};
use proptest::prelude::*;

fn arbitrary_config() -> impl Strategy<Value = NetworkConfig> {
    (2usize..=4, 2usize..=4, 1usize..=4, 2usize..=6, 1usize..=8).prop_map(
        |(w, h, vcs, depth, packet)| {
            NetworkConfig::builder()
                .mesh(w, h)
                .virtual_channels(vcs)
                .buffer_depth(depth)
                .packet_length(packet)
                .build()
                .expect("generated configurations are valid")
        },
    )
}

fn arbitrary_pattern() -> impl Strategy<Value = TrafficPattern> {
    prop_oneof![
        Just(TrafficPattern::Uniform),
        Just(TrafficPattern::Tornado),
        Just(TrafficPattern::BitComplement),
        Just(TrafficPattern::Transpose),
        Just(TrafficPattern::Neighbor),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// No flit is ever created or destroyed: everything generated is either
    /// still queued at a source, buffered in the network / in flight, or
    /// delivered — for any configuration, pattern, rate and seed.
    #[test]
    fn flits_are_conserved(
        cfg in arbitrary_config(),
        pattern in arbitrary_pattern(),
        rate in 0.01f64..0.3,
        seed in 0u64..1_000,
    ) {
        let packet_length = cfg.packet_length();
        let traffic = SyntheticTraffic::new(pattern, rate, packet_length);
        let mut sim = NocSimulation::new(cfg, Box::new(traffic), seed);
        sim.run_cycles(2_000);
        let generated = sim.total_flits_generated();
        let queued = sim.queued_source_flits() as u64;
        let buffered = sim.buffered_network_flits() as u64;
        let window = sim.take_window();
        prop_assert!(window.flits_ejected + queued + buffered <= generated);
        // Whatever is missing from the three categories is in flight on a
        // link or the injection channel, which is bounded by the number of
        // channels times their latency.
        let in_flight_bound = (sim.node_count() as u64) * 6;
        prop_assert!(
            generated - (window.flits_ejected + queued + buffered) <= in_flight_bound,
            "generated {} vs accounted {}",
            generated,
            window.flits_ejected + queued + buffered
        );
    }

    /// Same seed, same configuration → bit-identical statistics.
    #[test]
    fn simulation_is_deterministic(
        cfg in arbitrary_config(),
        rate in 0.01f64..0.25,
        seed in 0u64..1_000,
    ) {
        let packet_length = cfg.packet_length();
        let t1 = SyntheticTraffic::new(TrafficPattern::Uniform, rate, packet_length);
        let t2 = SyntheticTraffic::new(TrafficPattern::Uniform, rate, packet_length);
        let mut a = NocSimulation::new(cfg.clone(), Box::new(t1), seed);
        let mut b = NocSimulation::new(cfg, Box::new(t2), seed);
        a.run_cycles(1_500);
        b.run_cycles(1_500);
        prop_assert_eq!(a.stats(), b.stats());
        prop_assert_eq!(a.total_flits_generated(), b.total_flits_generated());
    }

    /// The wall-clock time of a run equals cycles / frequency, whatever the
    /// frequency chosen inside the allowed range — the arithmetic behind
    /// every "delay in ns" number of the paper.
    #[test]
    fn wall_time_matches_cycles_over_frequency(
        cfg in arbitrary_config(),
        mhz in 333.0f64..1_000.0,
        cycles in 100u64..3_000,
    ) {
        let packet_length = cfg.packet_length();
        let traffic = SyntheticTraffic::new(TrafficPattern::Uniform, 0.05, packet_length);
        let mut sim = NocSimulation::new(cfg, Box::new(traffic), 1);
        sim.set_noc_frequency(Hertz::from_mhz(mhz));
        sim.run_cycles(cycles);
        let expected_ns = cycles as f64 / (mhz / 1.0e3);
        prop_assert!((sim.wall_time().as_ns() - expected_ns).abs() < 1e-6 * expected_ns + 1e-9);
    }

    /// Delivered packets never beat the physics: latency in cycles is at
    /// least the minimal hop count plus the packet serialisation length.
    #[test]
    fn latency_respects_lower_bounds(
        cfg in arbitrary_config(),
        rate in 0.01f64..0.15,
        seed in 0u64..100,
    ) {
        let packet_length = cfg.packet_length();
        let traffic = SyntheticTraffic::new(TrafficPattern::Uniform, rate, packet_length);
        let mut sim = NocSimulation::new(cfg, Box::new(traffic), seed);
        sim.run_cycles(3_000);
        if sim.stats().packets > 0 {
            let avg = sim.stats().avg_latency_cycles().unwrap();
            // Any packet needs at least packet_length cycles of serialisation
            // plus one hop through a router pipeline.
            prop_assert!(
                avg >= packet_length as f64,
                "average latency {avg} below the serialisation bound {packet_length}"
            );
        }
    }

    /// Offered load below ~10% of capacity is always sustained: the accepted
    /// throughput tracks the offered load.
    #[test]
    fn light_load_is_always_sustained(
        cfg in arbitrary_config(),
        pattern in arbitrary_pattern(),
        seed in 0u64..100,
    ) {
        let packet_length = cfg.packet_length();
        let rate = 0.04;
        let traffic = SyntheticTraffic::new(pattern, rate, packet_length);
        let offered = traffic.offered_load();
        let mut sim = NocSimulation::new(cfg, Box::new(traffic), seed);
        sim.run_cycles(2_000);
        let _ = sim.take_window();
        sim.run_cycles(4_000);
        let window = sim.take_window();
        let throughput = window.throughput(sim.node_count());
        // Patterns where some nodes do not inject (e.g. transpose diagonal)
        // offer less than `rate`; compare against the measured offered load.
        prop_assert!(
            throughput >= 0.7 * offered.min(window.node_injection_rate(sim.node_count())),
            "throughput {throughput} too low for offered {offered}"
        );
    }
}
