//! # noc-sim — cycle-accurate 2D-mesh virtual-channel NoC simulator
//!
//! `noc-sim` is the simulation substrate used by the
//! [`noc-dvfs`](../noc_dvfs/index.html) crate to reproduce the experiments of
//! *"Rate-based vs Delay-based Control for DVFS in NoC"* (Casu & Giaccone,
//! DATE 2015). It plays the role that a modified Booksim 2.0 plays in the
//! paper: an input-queued virtual-channel router mesh with credit-based flow
//! control, dimension-ordered routing, and — crucially for the paper — a NoC
//! clock that is **decoupled** from the clock of the injecting nodes so that a
//! DVFS controller can slow the network down at run time.
//!
//! The simulator tracks both *cycles* (network clock ticks) and *wall-clock
//! time* (picoseconds), because the paper's central observation is that a
//! latency that is constant in cycles can be wildly non-monotonic in seconds
//! once the clock is scaled.
//!
//! ## Quick example
//!
//! ```
//! use noc_sim::{NetworkConfig, NocSimulation, SyntheticTraffic, TrafficPattern, Hertz};
//!
//! # fn main() {
//! let cfg = NetworkConfig::builder()
//!     .mesh(4, 4)
//!     .virtual_channels(2)
//!     .buffer_depth(4)
//!     .packet_length(5)
//!     .build()
//!     .expect("valid configuration");
//! let traffic = SyntheticTraffic::new(TrafficPattern::Uniform, 0.1, cfg.packet_length());
//! let mut sim = NocSimulation::new(cfg, Box::new(traffic), 7);
//! sim.set_noc_frequency(Hertz::from_mhz(500.0));
//! sim.run_cycles(5_000);
//! let m = sim.take_window();
//! assert!(m.packets_ejected > 0);
//! # }
//! ```
//!
//! ## Module map
//!
//! | module | role |
//! |---|---|
//! | [`units`] | frequency / time / rate newtypes |
//! | [`config`] | [`NetworkConfig`] and its builder |
//! | [`flit`] | flits, packets and their identifiers |
//! | [`topology`] | 2D mesh geometry and port algebra |
//! | [`routing`] | dimension-ordered (XY) routing |
//! | [`buffer`] | per-VC FIFO buffers |
//! | [`arbiter`] | round-robin arbiters |
//! | [`allocator`] | separable input-first allocator |
//! | [`router`] | the VC router pipeline (RC → VA → SA → ST) |
//! | [`link`] | inter-router flit and credit channels |
//! | [`traffic`] | synthetic patterns and traffic matrices |
//! | [`source`] | node-clock-driven packet generation |
//! | [`sink`] | ejection and per-packet recording |
//! | [`activity`] | switching-activity counters for power estimation |
//! | [`stats`] | latency / delay / throughput statistics |
//! | [`clock`] | dual-clock (node vs NoC) bookkeeping |
//! | [`sim`] | the [`NocSimulation`] driver |

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod activity;
pub mod allocator;
pub mod arbiter;
pub mod buffer;
pub mod clock;
pub mod config;
pub mod error;
pub mod flit;
pub mod link;
pub mod router;
pub mod routing;
pub mod sim;
pub mod sink;
pub mod source;
pub mod stats;
pub mod topology;
pub mod traffic;
pub mod units;

pub use activity::{NetworkActivity, RouterActivity};
pub use clock::DualClock;
pub use config::{NetworkConfig, NetworkConfigBuilder};
pub use error::ConfigError;
pub use flit::{Flit, FlitKind, PacketId};
pub use routing::{RoutingAlgorithm, XyRouting};
pub use sim::{NocSimulation, WindowMeasurement};
pub use stats::{PacketRecord, SimStats};
pub use topology::{Direction, Mesh2d};
pub use traffic::{MatrixTraffic, SyntheticTraffic, TrafficPattern, TrafficSpec};
pub use units::{Cycles, FlitsPerCycle, Hertz, Picoseconds};
