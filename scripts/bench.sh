#!/usr/bin/env bash
# Runs the tracked simulator-throughput benchmark suite with fixed sample
# counts and records the results into BENCH_sim_throughput.json at the repo
# root. Pass --merge to append to the existing artifact (keeping earlier runs,
# e.g. the pre-refactor baseline) instead of overwriting it; pass --filter to
# run a subset of cases while iterating (tracked runs should stay unfiltered).
#
# Usage:
#   scripts/bench.sh [--label NAME] [--merge] [--repeats N] [--cycles N] [--filter CASE]
#
# The PR-3 sparse-core run recorded in the artifact was produced with:
#   scripts/bench.sh --label pr3_sparse_core --merge
set -euo pipefail
cd "$(dirname "$0")/.."

LABEL="current"
MERGE=""
REPEATS=5
CYCLES=4000
FILTER=""
while [[ $# -gt 0 ]]; do
    case "$1" in
        --label) LABEL="$2"; shift 2 ;;
        --merge) MERGE="--merge BENCH_sim_throughput.json"; shift ;;
        --repeats) REPEATS="$2"; shift 2 ;;
        --cycles) CYCLES="$2"; shift 2 ;;
        --filter) FILTER="--filter $2"; shift 2 ;;
        *) echo "unknown argument: $1" >&2; exit 1 ;;
    esac
done

cargo build --release -p noc-bench
# shellcheck disable=SC2086
./target/release/bench_record \
    --label "$LABEL" \
    --out BENCH_sim_throughput.json \
    --repeats "$REPEATS" \
    --cycles "$CYCLES" \
    $FILTER \
    $MERGE
