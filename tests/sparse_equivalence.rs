//! Differential suite for the sparse activity-tracked simulation core.
//!
//! The sparse engine (active-router worklist + channel due-lists) is a pure
//! scheduling optimization: it must produce **bit-identical**
//! [`WindowMeasurement`] sequences to the dense `O(nodes × ports)` reference
//! loop retained behind `NOC_DENSE_STEP=1` /
//! [`NocSimulation::set_dense_stepping`]. Three contracts are pinned here:
//!
//! 1. **Differential equivalence** — randomized scenarios from the PR-2 grid
//!    (mesh/torus × every pattern × Bernoulli/bursty injection, random link
//!    and credit latencies, mid-run frequency changes) stepped by both
//!    engines produce identical window sequences and aggregate stats.
//! 2. **Quiescence invariant** — the active-router worklist is empty exactly
//!    when no flit is buffered; a drained network is quiescent (no buffered,
//!    queued, or in-flight payloads) and stays so at zero cost.
//! 3. **RNG-stream identity** — the `step()` short-circuit for NoC cycles in
//!    which zero node cycles complete performs zero RNG draws, so runs where
//!    the NoC outpaces the node clock stay bit-identical too.
//! 4. **Event-horizon skipping** — jumping the clock over quiescent spans
//!    ([`NocSimulation::set_event_skipping`], `NOC_NO_SKIP=1` in CI) is a
//!    pure scheduling optimization too: randomized differentials across
//!    gating × faults × islands × bursty injection (including a
//!    quiescent-then-burst source that forces long horizon jumps) pin it
//!    bit-identical to base-tick stepping.
//! 5. **Island-thread parity** — per-island parallel stepping
//!    ([`NocSimulation::run_cycles_with_workers`], `NOC_SWEEP_THREADS`) is
//!    pinned bit-identical to the serial step on the golden scenarios.

use noc_sim::{
    BurstyTraffic, FaultConfig, GatingConfig, HazardConfig, Hertz, NetworkConfig, NocSimulation,
    RegionLayout, RoutingKind, SyntheticTraffic, Topology, TopologyKind, TrafficPattern,
    TrafficSpec,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A 4×4 grid of either topology with randomized channel latencies — every
/// pattern in [`TrafficPattern::ALL`] is valid on it (square, power-of-two
/// node count).
fn grid_cfg(kind: TopologyKind, link_latency: u64, credit_latency: u64) -> NetworkConfig {
    // `.mesh(4, 4)` sets the dimensions AND resets the kind to Mesh, so the
    // topology override must come after it.
    NetworkConfig::builder()
        .mesh(4, 4)
        .topology(kind)
        .virtual_channels(2)
        .buffer_depth(4)
        .packet_length(4)
        .link_latency(link_latency)
        .credit_latency(credit_latency)
        .build()
        .expect("4x4 grid configurations are valid")
}

fn scenario_traffic(
    pattern: TrafficPattern,
    rate: f64,
    packet_length: usize,
    bursty: bool,
) -> Box<dyn TrafficSpec> {
    if bursty {
        Box::new(BurstyTraffic::new(pattern, rate, packet_length, 200.0, 4.0))
    } else {
        Box::new(SyntheticTraffic::new(pattern, rate, packet_length))
    }
}

/// Runs `sim` through the window schedule, returning the window sequence.
/// A frequency change after the second window exercises the dual-clock path
/// (including NoC cycles with zero completed node cycles after the change is
/// reverted — the NoC never exceeds the node clock here, but the windows
/// still cover two different clock ratios).
fn window_sequence(sim: &mut NocSimulation, chunks: &[u64]) -> Vec<noc_sim::WindowMeasurement> {
    let mut windows = Vec::with_capacity(chunks.len());
    for (i, &cycles) in chunks.iter().enumerate() {
        if i == 2 {
            sim.set_noc_frequency(Hertz::from_mhz(500.0));
        }
        if i == 4 {
            sim.set_noc_frequency(Hertz::from_ghz(1.0));
        }
        sim.run_cycles(cycles);
        windows.push(sim.take_window());
    }
    windows
}

proptest! {
    #![proptest_config(ProptestConfig::default())]

    /// Sparse and dense stepping produce bit-identical window sequences and
    /// aggregate statistics across the randomized scenario grid.
    #[test]
    fn sparse_and_dense_stepping_are_bit_identical(
        kind in prop_oneof![Just(TopologyKind::Mesh), Just(TopologyKind::Torus)],
        pattern_idx in 0usize..TrafficPattern::ALL.len(),
        bursty in prop_oneof![Just(false), Just(true)],
        rate in 0.02f64..0.35,
        link_latency in 1u64..=3,
        credit_latency in 1u64..=2,
        seed in 0u64..1_000_000,
        chunk in 80u64..320,
    ) {
        let pattern = TrafficPattern::ALL[pattern_idx];
        let cfg = grid_cfg(kind, link_latency, credit_latency);
        let mut sparse = NocSimulation::new(
            cfg.clone(),
            scenario_traffic(pattern, rate, cfg.packet_length(), bursty),
            seed,
        );
        let mut dense = NocSimulation::new(
            cfg.clone(),
            scenario_traffic(pattern, rate, cfg.packet_length(), bursty),
            seed,
        );
        sparse.set_dense_stepping(false);
        dense.set_dense_stepping(true);
        let chunks = [chunk, 2 * chunk, chunk / 2 + 1, chunk, chunk + 37, chunk];
        let ws = window_sequence(&mut sparse, &chunks);
        let wd = window_sequence(&mut dense, &chunks);
        prop_assert_eq!(ws, wd, "windows diverged for {}/{:?}/{} seed {}",
            kind.name(), pattern, if bursty { "bursty" } else { "bernoulli" }, seed);
        prop_assert_eq!(sparse.stats(), dense.stats());
        prop_assert_eq!(sparse.total_packets_delivered(), dense.total_packets_delivered());
        prop_assert_eq!(sparse.queued_source_flits(), dense.queued_source_flits());
        prop_assert_eq!(sparse.buffered_network_flits(), dense.buffered_network_flits());
        prop_assert_eq!(sparse.in_flight_flits(), dense.in_flight_flits());
        prop_assert_eq!(sparse.in_flight_credits(), dense.in_flight_credits());
    }

    /// The active-router worklist is empty exactly when no flit is buffered,
    /// and a drained network satisfies the full quiescence contract.
    #[test]
    fn quiescence_invariant_holds_through_drain(
        kind in prop_oneof![Just(TopologyKind::Mesh), Just(TopologyKind::Torus)],
        budget in 5u64..60,
        rate in 0.05f64..0.5,
        seed in 0u64..1_000_000,
    ) {
        let cfg = grid_cfg(kind, 1, 1);
        let traffic = FiniteTraffic { budget, rate, packet_length: cfg.packet_length() };
        let mut sim = NocSimulation::new(cfg.clone(), Box::new(traffic), seed);
        let mut drained_at = None;
        for chunk in 0..60 {
            sim.run_cycles(50);
            // The worklist invariant holds at every observation point, loaded
            // or not: active set empty ⇔ no buffered flits.
            prop_assert_eq!(
                sim.active_router_count() == 0,
                sim.buffered_network_flits() == 0,
                "worklist out of sync in chunk {}", chunk
            );
            if sim.is_quiescent() {
                drained_at = Some(chunk);
                break;
            }
        }
        prop_assert!(drained_at.is_some(), "a finite workload must drain within 3000 cycles");
        // The quiescence contract: nothing buffered, queued or in flight, and
        // every generated packet fully delivered.
        prop_assert_eq!(sim.active_router_count(), 0);
        prop_assert_eq!(sim.buffered_network_flits(), 0);
        prop_assert_eq!(sim.queued_source_flits(), 0);
        prop_assert_eq!(sim.in_flight_flits(), 0);
        prop_assert_eq!(sim.in_flight_credits(), 0);
        prop_assert_eq!(
            sim.total_packets_delivered() * cfg.packet_length() as u64,
            sim.total_flits_generated(),
            "a drained network has delivered every generated flit"
        );
        // A quiescent network stays quiescent, and its windows show pure
        // clock progress with zero traffic.
        let _ = sim.take_window();
        sim.run_cycles(500);
        prop_assert!(sim.is_quiescent());
        let w = sim.take_window();
        prop_assert_eq!(w.noc_cycles, 500);
        prop_assert_eq!(w.flits_generated, 0);
        prop_assert_eq!(w.flits_injected, 0);
        prop_assert_eq!(w.flits_ejected, 0);
    }
}

/// Traffic that offers Bernoulli uniform load for the first `budget`
/// node-cycle sweeps and then goes silent — lets a run drain completely.
#[derive(Debug)]
struct FiniteTraffic {
    budget: u64,
    rate: f64,
    packet_length: usize,
}

impl TrafficSpec for FiniteTraffic {
    fn packet_length(&self) -> usize {
        self.packet_length
    }
    fn offered_load(&self) -> f64 {
        self.rate
    }
    fn maybe_generate(
        &mut self,
        src: usize,
        _node_cycle: u64,
        topo: &Topology,
        rng: &mut StdRng,
    ) -> Option<usize> {
        if self.budget == 0 {
            return None;
        }
        if src + 1 == topo.node_count() {
            self.budget -= 1;
        }
        use rand::Rng;
        let p = self.rate / self.packet_length as f64;
        if rng.gen_bool(p) {
            TrafficPattern::Uniform.destination(src, topo, rng)
        } else {
            None
        }
    }
}

/// The two checked-in golden scenarios (`tests/determinism.rs`) stepped by
/// both engines side by side: the dense loop cannot drift from the sparse
/// one on exactly the sequences the goldens pin.
#[test]
fn golden_scenarios_are_engine_independent() {
    let mesh = NetworkConfig::builder()
        .mesh(4, 4)
        .virtual_channels(2)
        .buffer_depth(4)
        .packet_length(5)
        .build()
        .unwrap();
    let torus = NetworkConfig::builder()
        .torus(4, 4)
        .virtual_channels(2)
        .buffer_depth(4)
        .packet_length(5)
        .build()
        .unwrap();
    type TrafficFactory = Box<dyn Fn() -> Box<dyn TrafficSpec>>;
    let scenarios: [(NetworkConfig, TrafficFactory); 2] = [
        (
            mesh,
            Box::new(|| Box::new(SyntheticTraffic::new(TrafficPattern::Uniform, 0.10, 5))),
        ),
        (
            torus,
            Box::new(|| Box::new(BurstyTraffic::new(TrafficPattern::Hotspot, 0.10, 5, 200.0, 4.0))),
        ),
    ];
    for (cfg, make_traffic) in &scenarios {
        let mut sparse = NocSimulation::new(cfg.clone(), make_traffic(), 2015);
        let mut dense = NocSimulation::new(cfg.clone(), make_traffic(), 2015);
        sparse.set_dense_stepping(false);
        dense.set_dense_stepping(true);
        for window in 0..6 {
            sparse.run_cycles(500);
            dense.run_cycles(500);
            assert_eq!(
                sparse.take_window(),
                dense.take_window(),
                "golden scenario window {window} diverged between engines"
            );
        }
        assert_eq!(sparse.stats(), dense.stats());
    }
}

/// Regression for the `step()` short-circuit: when a NoC cycle completes
/// zero node-clock cycles, the generation phase is skipped entirely — which
/// is only sound because `Source::generate` with zero cycles performs zero
/// RNG draws. Pinned directly on the source, then end-to-end on a
/// configuration whose NoC clock outpaces the node clock.
#[test]
fn zero_node_cycle_short_circuit_preserves_the_rng_stream() {
    // Direct: generate(0, ..) must leave the shared RNG untouched.
    let topo = Topology::with_kind(TopologyKind::Mesh, 4, 4);
    let mut traffic = SyntheticTraffic::new(TrafficPattern::Uniform, 0.9, 4);
    let mut source = noc_sim::source::Source::new(0, 2, 4);
    let mut rng = StdRng::seed_from_u64(99);
    let untouched = rng.clone();
    let mut next_id = 0;
    source.generate(0, 0, &mut traffic, &topo, &mut rng, &mut next_id, 0, 0.0);
    assert_eq!(rng, untouched, "zero node cycles must draw nothing from the RNG");
    assert_eq!(source.flits_generated(), 0);

    // End to end: node clock at 400 MHz under a 1 GHz NoC clock means ~60 %
    // of NoC cycles complete zero node cycles, so the short-circuit fires
    // constantly; sparse and dense must still agree bit-for-bit.
    let cfg = NetworkConfig::builder()
        .mesh(4, 4)
        .virtual_channels(2)
        .buffer_depth(4)
        .packet_length(4)
        .node_frequency(Hertz::from_mhz(400.0))
        .build()
        .unwrap();
    let mk = || Box::new(SyntheticTraffic::new(TrafficPattern::Uniform, 0.2, 4));
    let mut sparse = NocSimulation::new(cfg.clone(), mk(), 7);
    let mut dense = NocSimulation::new(cfg, mk(), 7);
    sparse.set_dense_stepping(false);
    dense.set_dense_stepping(true);
    let mut windows = Vec::new();
    for _ in 0..5 {
        sparse.run_cycles(400);
        dense.run_cycles(400);
        let w = sparse.take_window();
        assert_eq!(w, dense.take_window());
        windows.push(w);
    }
    // The scenario really exercises the skip: fewer node cycles than NoC
    // cycles, yet traffic still flows.
    let node_cycles: u64 = windows.iter().map(|w| w.node_cycles).sum();
    let noc_cycles: u64 = windows.iter().map(|w| w.noc_cycles).sum();
    assert!(node_cycles < noc_cycles / 2, "node clock must lag the NoC clock");
    assert!(windows.iter().map(|w| w.flits_ejected).sum::<u64>() > 0);
    assert_eq!(sparse.stats(), dense.stats());
}

// ---------------------------------------------------------------------------
// Event-horizon skipping differentials
// ---------------------------------------------------------------------------

/// A 4×4 mesh exercising the chosen subsystem combination: power gating,
/// a transient-fault hazard with adaptive routing, and/or quadrant
/// voltage-frequency islands.
fn subsystem_cfg(gated: bool, faulted: bool, islands: bool) -> NetworkConfig {
    let mut b = NetworkConfig::builder().mesh(4, 4).virtual_channels(2).buffer_depth(4).packet_length(4);
    if gated {
        b = b.gating(GatingConfig::enabled(24, 8));
    }
    if faulted {
        b = b.routing(RoutingKind::MinimalAdaptive).faults(FaultConfig::none().with_hazard(
            HazardConfig {
                link_rate: 2e-4,
                router_rate: 1e-4,
                transient_fraction: 1.0,
                transient_duration: 120,
            },
        ));
    }
    if islands {
        b = b.regions(RegionLayout::Quadrants);
    }
    b.build().expect("subsystem combinations are valid")
}

proptest! {
    #![proptest_config(ProptestConfig::default())]

    /// Event-horizon skipping is bit-identical to base-tick stepping across
    /// every subsystem combination: gating (sleep/wake due-heaps), a fault
    /// hazard (next-event draws), voltage-frequency islands (clock
    /// dividers, optionally detuned mid-run) and bursty injection.
    #[test]
    fn event_skipping_is_bit_identical_across_subsystems(
        gated in prop_oneof![Just(false), Just(true)],
        faulted in prop_oneof![Just(false), Just(true)],
        islands in prop_oneof![Just(false), Just(true)],
        bursty in prop_oneof![Just(false), Just(true)],
        rate in 0.0f64..0.3,
        seed in 0u64..1_000_000,
        chunk in 80u64..320,
    ) {
        let cfg = subsystem_cfg(gated, faulted, islands);
        let mk = || scenario_traffic(TrafficPattern::Uniform, rate, 4, bursty);
        let mut skipping = NocSimulation::new(cfg.clone(), mk(), seed);
        let mut stepping = NocSimulation::new(cfg.clone(), mk(), seed);
        skipping.set_event_skipping(true);
        stepping.set_event_skipping(false);
        if islands {
            // A detuned island keeps the divider wheels busy across jumps.
            skipping.set_island_frequency(2, Hertz::from_mhz(400.0));
            stepping.set_island_frequency(2, Hertz::from_mhz(400.0));
        }
        let chunks = [chunk, 2 * chunk, chunk / 2 + 1, chunk + 37, chunk];
        let ws = window_sequence(&mut skipping, &chunks);
        let wn = window_sequence(&mut stepping, &chunks);
        prop_assert_eq!(ws, wn, "windows diverged (gated={} faulted={} islands={} bursty={} seed={})",
            gated, faulted, islands, bursty, seed);
        prop_assert_eq!(skipping.stats(), stepping.stats());
        prop_assert_eq!(skipping.total_packets_delivered(), stepping.total_packets_delivered());
        prop_assert_eq!(skipping.buffered_network_flits(), stepping.buffered_network_flits());
        prop_assert_eq!(skipping.in_flight_flits(), stepping.in_flight_flits());
        prop_assert_eq!(skipping.in_flight_credits(), stepping.in_flight_credits());
        prop_assert_eq!(stepping.skipped_cycle_count(), 0, "disabled skipping must not skip");
    }

    /// Quiescent-then-burst traffic through both engines: the long silent
    /// prelude must be jumped (not stepped), and the burst must land on the
    /// exact same cycle with the exact same RNG stream.
    #[test]
    fn quiescent_then_burst_jumps_the_horizon_bit_identically(
        gated in prop_oneof![Just(false), Just(true)],
        silence in 500u64..3_000,
        burst in 100u64..400,
        rate in 0.2f64..0.8,
        seed in 0u64..1_000_000,
    ) {
        let cfg = subsystem_cfg(gated, false, false);
        let mk = || Box::new(QuiescentThenBurst {
            burst_start: silence,
            burst_end: silence + burst,
            rate,
            packet_length: 4,
        });
        let mut skipping = NocSimulation::new(cfg.clone(), mk(), seed);
        let mut stepping = NocSimulation::new(cfg.clone(), mk(), seed);
        skipping.set_event_skipping(true);
        stepping.set_event_skipping(false);
        // One window across the silence, one across the burst, one to drain.
        let chunks = [silence, burst, 1_000];
        for &cycles in &chunks {
            skipping.run_cycles(cycles);
            stepping.run_cycles(cycles);
            prop_assert_eq!(skipping.take_window(), stepping.take_window());
        }
        prop_assert_eq!(skipping.stats(), stepping.stats());
        prop_assert!(
            skipping.total_packets_delivered() > 0,
            "the burst must inject traffic (rate {rate})"
        );
        // The silent prelude really was jumped, not stepped. (Under
        // NOC_DENSE_STEP=1 the dense reference loop is selected and skipping
        // never applies — the bit-identity checks above still hold, but the
        // jump itself only happens on the sparse engine.)
        if !skipping.dense_stepping() {
            prop_assert!(
                skipping.skipped_cycle_count() >= silence / 2,
                "expected a long horizon jump over {} silent cycles, skipped only {}",
                silence, skipping.skipped_cycle_count()
            );
        }
    }
}

/// Traffic that is provably silent until `burst_start` node cycles, offers
/// Bernoulli uniform load until `burst_end`, then goes silent forever —
/// the event-horizon contract's stateful-source shape
/// ([`TrafficSpec::silent_node_cycles`] / [`TrafficSpec::skip_node_cycles`]).
#[derive(Debug)]
struct QuiescentThenBurst {
    burst_start: u64,
    burst_end: u64,
    rate: f64,
    packet_length: usize,
}

impl TrafficSpec for QuiescentThenBurst {
    fn packet_length(&self) -> usize {
        self.packet_length
    }
    fn offered_load(&self) -> f64 {
        self.rate
    }
    fn maybe_generate(
        &mut self,
        src: usize,
        node_cycle: u64,
        topo: &Topology,
        rng: &mut StdRng,
    ) -> Option<usize> {
        if node_cycle < self.burst_start || node_cycle >= self.burst_end {
            return None;
        }
        use rand::Rng;
        if rng.gen_bool((self.rate / self.packet_length as f64).min(1.0)) {
            TrafficPattern::Uniform.destination(src, topo, rng)
        } else {
            None
        }
    }
    fn silent_node_cycles(&self, from_node_cycle: u64) -> u64 {
        if from_node_cycle >= self.burst_end {
            u64::MAX
        } else {
            self.burst_start.saturating_sub(from_node_cycle)
        }
    }
}

// ---------------------------------------------------------------------------
// Per-island parallel stepping parity
// ---------------------------------------------------------------------------

/// Multi-threaded island stepping pinned against the single-threaded golden:
/// the quadrant scenario stepped serially and with 2 and 4 workers must
/// produce bit-identical windows, island windows and aggregate stats —
/// including across a mid-run per-island frequency change.
#[test]
fn parallel_island_stepping_matches_the_serial_golden() {
    let cfg = NetworkConfig::builder()
        .mesh(4, 4)
        .virtual_channels(2)
        .buffer_depth(4)
        .packet_length(5)
        .regions(RegionLayout::Quadrants)
        .build()
        .unwrap();
    let mk = || Box::new(SyntheticTraffic::new(TrafficPattern::Uniform, 0.12, 5));
    let mut serial = NocSimulation::new(cfg.clone(), mk(), 2015);
    let mut threaded2 = NocSimulation::new(cfg.clone(), mk(), 2015);
    let mut threaded4 = NocSimulation::new(cfg.clone(), mk(), 2015);
    for window in 0..6 {
        if window == 2 {
            for sim in [&mut serial, &mut threaded2, &mut threaded4] {
                sim.set_island_frequency(1, Hertz::from_mhz(500.0));
            }
        }
        serial.run_cycles_with_workers(500, 1);
        threaded2.run_cycles_with_workers(500, 2);
        threaded4.run_cycles_with_workers(500, 4);
        let golden = serial.take_window();
        assert_eq!(golden, threaded2.take_window(), "2-worker window {window} diverged");
        assert_eq!(golden, threaded4.take_window(), "4-worker window {window} diverged");
        let island_golden = serial.take_island_windows();
        assert_eq!(island_golden, threaded2.take_island_windows());
        assert_eq!(island_golden, threaded4.take_island_windows());
    }
    assert_eq!(serial.stats(), threaded2.stats());
    assert_eq!(serial.stats(), threaded4.stats());
    assert_eq!(serial.total_packets_delivered(), threaded4.total_packets_delivered());
    assert!(serial.total_packets_delivered() > 0, "the golden scenario must carry traffic");
}
