//! Trace-driven workload record / replay.
//!
//! A **trace** is the exact injection history of a run: one event per
//! generated packet, carrying the absolute node-clock cycle, the source, the
//! destination and the tenant slot of the source. Traces close the loop
//! between synthetic experiments and workload-driven ones:
//!
//! * [`RecordingTraffic`] wraps any live [`TrafficSpec`] and streams every
//!   generation event into a [`TraceWriter`] while behaving — RNG draws,
//!   windows, goldens — bit-identically to the wrapped source;
//! * [`TraceTraffic`] replays a recorded trace deterministically: it draws
//!   **nothing** from the RNG and re-injects each event at exactly the
//!   recorded `(node_cycle, src)`, so a replay run reproduces the recorded
//!   run's windows and ledgers bit for bit (pinned by
//!   `tests/trace_invariants.rs`).
//!
//! # On-disk format
//!
//! A trace is a directory: `manifest.bin` plus `chunk-NNNNNN.bin` files.
//! Chunks are written atomically ([`write_atomic`]) as they fill, so the
//! writer holds at most one chunk of events in memory regardless of trace
//! length, and the reader ([`TraceReader`]) keeps exactly one chunk resident
//! (observable via [`chunk_loads`](TraceReader::chunk_loads)). Events are
//! delta-encoded: cycles and sources as zigzag varint deltas, destinations
//! and tenant slots as plain varints — a dense uniform-load trace costs a
//! few bytes per packet. The codec is layered on the snapshot module's
//! little-endian [`SnapWriter`]/[`SnapReader`] primitives.
//!
//! # Replay determinism contract
//!
//! Replay relies on the run having the **same generation schedule** as the
//! recording: the same topology, node clock and DVFS policy trajectory
//! produce the same node-cycle batches in the same node-major order, so the
//! recorded event stream is consumed strictly in order with an O(1) head
//! match per query. Idle gaps honour the event-horizon contract
//! ([`TrafficSpec::silent_node_cycles`]): the span to the earliest pending
//! event is declared silent, so a replay of a bursty trace skips its dead
//! time. If the schedules diverge (a different frequency trajectory), events
//! whose slot has already passed are counted in
//! [`missed_events`](TraceTraffic::missed_events) instead of being silently
//! re-timed — a nonzero count means the replay is *not* a reproduction.
//!
//! ```no_run
//! use noc_sim::{NetworkConfig, NocSimulation, SyntheticTraffic, TrafficPattern};
//! use noc_sim::trace::{RecordingTraffic, TraceTraffic, TraceWriter};
//! use std::sync::{Arc, Mutex};
//!
//! let cfg = NetworkConfig::builder()
//!     .mesh(4, 4).virtual_channels(2).buffer_depth(4).packet_length(5)
//!     .build().unwrap();
//! let dir = std::path::Path::new("/tmp/trace-demo");
//! // Record: wrap the live source, run, finish the writer.
//! let writer = Arc::new(Mutex::new(
//!     TraceWriter::create(dir, cfg.packet_length(), 16, 4096).unwrap(),
//! ));
//! let live = SyntheticTraffic::new(TrafficPattern::Uniform, 0.1, cfg.packet_length());
//! let recording = RecordingTraffic::new(Box::new(live), Arc::clone(&writer));
//! let mut sim = NocSimulation::new(cfg.clone(), Box::new(recording), 7);
//! sim.run_cycles(10_000);
//! drop(sim);
//! writer.lock().unwrap().finish().unwrap();
//! // Replay: same config and seed, traffic from the trace.
//! let replay = TraceTraffic::open(dir).unwrap();
//! let mut sim2 = NocSimulation::new(cfg, Box::new(replay), 7);
//! sim2.run_cycles(10_000);
//! ```

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;

use crate::snapshot::{SnapReader, SnapWriter, SnapshotError};
use crate::tenant::TenantMap;
use crate::topology::Topology;
use crate::traffic::TrafficSpec;

/// Magic number leading the manifest and every chunk file ("NOCTRACE").
pub const TRACE_MAGIC: u64 = 0x4E4F_4354_5241_4345;

/// Current trace format version. Bumped on any layout change; other
/// versions are rejected rather than misread.
pub const TRACE_VERSION: u32 = 1;

/// Default number of events buffered per chunk — the writer's (and the
/// reader's) memory bound, independent of trace length.
pub const DEFAULT_CHUNK_EVENTS: usize = 64 * 1024;

/// Atomic file replacement: write to a sibling temp file, then rename over
/// the destination. A crash at any instant leaves either the old complete
/// file or the new complete file — never a torn mix.
///
/// (This is the primitive the sweep coordinator's journal and checkpoints
/// are built on; `noc_dvfs::coordinator::write_atomic` re-exports it.)
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

/// One recorded injection: a packet generated at `src` on the absolute
/// node-clock cycle `node_cycle`, bound for `dst`. `tenant` is the
/// accounting slot of the source at record time (0 when no tenant map was
/// installed); packet length is uniform per trace and lives in the manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Absolute node-clock cycle of the generation draw.
    pub node_cycle: u64,
    /// Source node.
    pub src: u32,
    /// Destination node.
    pub dst: u32,
    /// Tenant accounting slot of the source when recorded.
    pub tenant: u32,
}

/// Errors opening or reading a trace.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A manifest or chunk failed to decode.
    Snapshot(SnapshotError),
    /// The decoded data is structurally invalid.
    Corrupt(&'static str),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Snapshot(e) => write!(f, "trace decode error: {e}"),
            TraceError::Corrupt(what) => write!(f, "corrupt trace: {what}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Snapshot(e) => Some(e),
            TraceError::Corrupt(_) => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl From<SnapshotError> for TraceError {
    fn from(e: SnapshotError) -> Self {
        TraceError::Snapshot(e)
    }
}

/// Manifest entry of one chunk: how many events it holds and the cycle
/// range they span. `min_cycle` is a true minimum (record order is
/// node-major within a generation batch, so the first event of a chunk is
/// not necessarily its earliest) — the replay source's silence bound
/// depends on that.
#[derive(Debug, Clone, Copy)]
struct ChunkMeta {
    events: u64,
    min_cycle: u64,
    max_cycle: u64,
}

fn chunk_file(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("chunk-{index:06}.bin"))
}

fn manifest_file(dir: &Path) -> PathBuf {
    dir.join("manifest.bin")
}

// --------------------------------------------------------------------------
// Varint / zigzag codec (layered on SnapWriter / SnapReader bytes)
// --------------------------------------------------------------------------

fn put_varint(w: &mut SnapWriter, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            w.put_u8(byte);
            return;
        }
        w.put_u8(byte | 0x80);
    }
}

fn read_varint(r: &mut SnapReader<'_>) -> Result<u64, TraceError> {
    let mut v = 0u64;
    for shift in (0..64).step_by(7) {
        let byte = r.read_u8()?;
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            if shift == 63 && byte > 1 {
                return Err(TraceError::Corrupt("varint overflows u64"));
            }
            return Ok(v);
        }
    }
    Err(TraceError::Corrupt("varint longer than 10 bytes"))
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// --------------------------------------------------------------------------
// Writer
// --------------------------------------------------------------------------

/// Summary returned by [`TraceWriter::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total events recorded.
    pub events: u64,
    /// Chunk files written.
    pub chunks: usize,
}

/// Streams trace events into a directory of atomically-written chunks plus
/// a manifest, holding at most one chunk of events in memory.
///
/// I/O errors are **latched** rather than returned per event — a recorder
/// on the simulation hot path has nowhere to put a `Result` — and surface
/// from [`finish`](Self::finish). A trace whose writer was never finished
/// has no manifest and is rejected by [`TraceReader::open`].
#[derive(Debug)]
pub struct TraceWriter {
    dir: PathBuf,
    packet_length: usize,
    node_count: usize,
    chunk_events: usize,
    buffer: Vec<TraceEvent>,
    chunks: Vec<ChunkMeta>,
    total_events: u64,
    error: Option<std::io::Error>,
    finished: bool,
}

impl TraceWriter {
    /// Creates the trace directory (and parents) and an empty writer.
    /// `chunk_events` bounds the in-memory buffer; each time it fills, one
    /// chunk file is flushed.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn create(
        dir: impl Into<PathBuf>,
        packet_length: usize,
        node_count: usize,
        chunk_events: usize,
    ) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(TraceWriter {
            dir,
            packet_length,
            node_count,
            chunk_events: chunk_events.max(1),
            buffer: Vec::new(),
            chunks: Vec::new(),
            total_events: 0,
            error: None,
            finished: false,
        })
    }

    /// Appends one event, flushing a chunk when the buffer fills. I/O
    /// failures are latched and reported by [`finish`](Self::finish);
    /// recording continues as a no-op after a latched error.
    pub fn record(&mut self, event: TraceEvent) {
        if self.error.is_some() || self.finished {
            return;
        }
        self.buffer.push(event);
        self.total_events += 1;
        if self.buffer.len() >= self.chunk_events {
            self.flush_chunk();
        }
    }

    /// Events currently buffered (bounded by the chunk size).
    pub fn buffered_events(&self) -> usize {
        self.buffer.len()
    }

    /// Chunks flushed to disk so far.
    pub fn chunks_written(&self) -> usize {
        self.chunks.len()
    }

    /// Total events recorded so far (buffered and flushed).
    pub fn recorded_events(&self) -> u64 {
        self.total_events
    }

    fn flush_chunk(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let index = self.chunks.len();
        let mut w = SnapWriter::new();
        w.put_u64(TRACE_MAGIC);
        w.put_u32(TRACE_VERSION);
        w.put_usize(index);
        w.put_usize(self.buffer.len());
        let mut prev_cycle = 0i64;
        let mut prev_src = 0i64;
        let mut min_cycle = u64::MAX;
        let mut max_cycle = 0u64;
        for ev in &self.buffer {
            put_varint(&mut w, zigzag(ev.node_cycle as i64 - prev_cycle));
            put_varint(&mut w, zigzag(i64::from(ev.src) - prev_src));
            put_varint(&mut w, u64::from(ev.dst));
            put_varint(&mut w, u64::from(ev.tenant));
            prev_cycle = ev.node_cycle as i64;
            prev_src = i64::from(ev.src);
            min_cycle = min_cycle.min(ev.node_cycle);
            max_cycle = max_cycle.max(ev.node_cycle);
        }
        let events = self.buffer.len() as u64;
        match write_atomic(&chunk_file(&self.dir, index), &w.into_vec()) {
            Ok(()) => {
                self.chunks.push(ChunkMeta { events, min_cycle, max_cycle });
                self.buffer.clear();
            }
            Err(e) => self.error = Some(e),
        }
    }

    /// Flushes the final partial chunk and writes the manifest, completing
    /// the trace. Idempotent: a second call returns the same summary.
    ///
    /// # Errors
    ///
    /// Returns the first latched recording error, or the flush/manifest
    /// write failure.
    pub fn finish(&mut self) -> std::io::Result<TraceSummary> {
        if !self.finished {
            self.flush_chunk();
            if let Some(e) = self.error.take() {
                self.error = Some(std::io::Error::new(e.kind(), e.to_string()));
                return Err(e);
            }
            let mut w = SnapWriter::new();
            w.put_u64(TRACE_MAGIC);
            w.put_u32(TRACE_VERSION);
            w.put_usize(self.packet_length);
            w.put_usize(self.node_count);
            w.put_u64(self.total_events);
            w.put_usize(self.chunks.len());
            for chunk in &self.chunks {
                w.put_u64(chunk.events);
                w.put_u64(chunk.min_cycle);
                w.put_u64(chunk.max_cycle);
            }
            write_atomic(&manifest_file(&self.dir), &w.into_vec())?;
            self.finished = true;
        }
        Ok(TraceSummary { events: self.total_events, chunks: self.chunks.len() })
    }
}

// --------------------------------------------------------------------------
// Reader
// --------------------------------------------------------------------------

/// Streams a trace back, keeping exactly **one chunk resident** at a time —
/// replaying a trace larger than the chunk budget never holds more than one
/// chunk of events in memory, observable via
/// [`chunk_loads`](Self::chunk_loads).
#[derive(Debug)]
pub struct TraceReader {
    dir: PathBuf,
    packet_length: usize,
    node_count: usize,
    total_events: u64,
    chunks: Vec<ChunkMeta>,
    /// `meta_min_suffix[i]` = min of `chunks[i..].min_cycle` (`u64::MAX`
    /// past the end) — the earliest cycle any not-yet-loaded chunk holds.
    meta_min_suffix: Vec<u64>,
    /// The resident chunk's events, in record order.
    current: Vec<TraceEvent>,
    /// `current_min_suffix[i]` = min cycle over `current[i..]`.
    current_min_suffix: Vec<u64>,
    /// Index of the resident chunk; `usize::MAX` before the first load.
    current_chunk: usize,
    /// Read position inside the resident chunk.
    pos: usize,
    /// Events consumed in chunks before the resident one.
    consumed_before: u64,
    chunk_loads: u64,
}

impl TraceReader {
    /// Opens a finished trace directory by reading its manifest.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] when the manifest is unreadable (in particular for
    /// a trace whose writer never [`finish`](TraceWriter::finish)ed),
    /// [`TraceError::Snapshot`] / [`TraceError::Corrupt`] when it does not
    /// decode.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, TraceError> {
        let dir = dir.into();
        let bytes = std::fs::read(manifest_file(&dir))?;
        let mut r = SnapReader::new(&bytes);
        if r.read_u64()? != TRACE_MAGIC {
            return Err(TraceError::Corrupt("manifest magic"));
        }
        let version = r.read_u32()?;
        if version != TRACE_VERSION {
            return Err(TraceError::Corrupt("unsupported trace version"));
        }
        let packet_length = r.read_usize()?;
        if packet_length == 0 {
            return Err(TraceError::Corrupt("zero packet length"));
        }
        let node_count = r.read_usize()?;
        let total_events = r.read_u64()?;
        let chunk_count = r.read_usize()?;
        let mut chunks = Vec::with_capacity(chunk_count.min(1 << 20));
        let mut sum = 0u64;
        for _ in 0..chunk_count {
            let meta = ChunkMeta {
                events: r.read_u64()?,
                min_cycle: r.read_u64()?,
                max_cycle: r.read_u64()?,
            };
            if meta.events == 0 {
                return Err(TraceError::Corrupt("empty chunk in manifest"));
            }
            sum += meta.events;
            chunks.push(meta);
        }
        r.finish()?;
        if sum != total_events {
            return Err(TraceError::Corrupt("manifest event count mismatch"));
        }
        let mut meta_min_suffix = vec![u64::MAX; chunks.len() + 1];
        for (i, chunk) in chunks.iter().enumerate().rev() {
            meta_min_suffix[i] = chunk.min_cycle.min(meta_min_suffix[i + 1]);
        }
        Ok(TraceReader {
            dir,
            packet_length,
            node_count,
            total_events,
            chunks,
            meta_min_suffix,
            current: Vec::new(),
            current_min_suffix: Vec::new(),
            current_chunk: usize::MAX,
            pos: 0,
            consumed_before: 0,
            chunk_loads: 0,
        })
    }

    /// Uniform packet length of every recorded event (from the manifest).
    pub fn packet_length(&self) -> usize {
        self.packet_length
    }

    /// Node count of the recorded network.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Total events in the trace.
    pub fn total_events(&self) -> u64 {
        self.total_events
    }

    /// Chunk files decoded so far — the memory-bound observable: a full
    /// sequential read of an `n`-chunk trace costs exactly `n` loads.
    pub fn chunk_loads(&self) -> u64 {
        self.chunk_loads
    }

    /// Events already consumed via [`next`](Self::next).
    pub fn consumed(&self) -> u64 {
        self.consumed_before + self.pos as u64
    }

    fn load_chunk(&mut self, index: usize) -> Result<(), TraceError> {
        let meta = self.chunks[index];
        let bytes = std::fs::read(chunk_file(&self.dir, index))?;
        let mut r = SnapReader::new(&bytes);
        if r.read_u64()? != TRACE_MAGIC {
            return Err(TraceError::Corrupt("chunk magic"));
        }
        if r.read_u32()? != TRACE_VERSION {
            return Err(TraceError::Corrupt("unsupported trace version"));
        }
        if r.read_usize()? != index {
            return Err(TraceError::Corrupt("chunk index mismatch"));
        }
        let events = r.read_usize()?;
        if events as u64 != meta.events {
            return Err(TraceError::Corrupt("chunk event count mismatch"));
        }
        self.current.clear();
        self.current.reserve(events);
        let mut prev_cycle = 0i64;
        let mut prev_src = 0i64;
        for _ in 0..events {
            let cycle = prev_cycle
                .checked_add(unzigzag(read_varint(&mut r)?))
                .filter(|&c| c >= 0)
                .ok_or(TraceError::Corrupt("cycle delta out of range"))?;
            let src = prev_src
                .checked_add(unzigzag(read_varint(&mut r)?))
                .filter(|&s| (0..=i64::from(u32::MAX)).contains(&s))
                .ok_or(TraceError::Corrupt("source delta out of range"))?;
            let dst = u32::try_from(read_varint(&mut r)?)
                .map_err(|_| TraceError::Corrupt("destination out of range"))?;
            let tenant = u32::try_from(read_varint(&mut r)?)
                .map_err(|_| TraceError::Corrupt("tenant slot out of range"))?;
            self.current.push(TraceEvent {
                node_cycle: cycle as u64,
                src: src as u32,
                dst,
                tenant,
            });
            prev_cycle = cycle;
            prev_src = src;
        }
        r.finish()?;
        self.current_min_suffix.clear();
        self.current_min_suffix.resize(events + 1, u64::MAX);
        for i in (0..events).rev() {
            self.current_min_suffix[i] =
                self.current[i].node_cycle.min(self.current_min_suffix[i + 1]);
        }
        if self.current_min_suffix.first().copied().unwrap_or(u64::MAX) != meta.min_cycle {
            return Err(TraceError::Corrupt("chunk cycle range mismatch"));
        }
        self.current_chunk = index;
        self.pos = 0;
        self.chunk_loads += 1;
        Ok(())
    }

    /// Returns the next event in record order, or `None` at the end of the
    /// trace.
    ///
    /// # Errors
    ///
    /// Chunk read/decode failures.
    // Not `Iterator`: the fallible `Result<Option<_>>` shape (and `seek`)
    // is the point of this reader; an `Iterator` face would bury errors.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<TraceEvent>, TraceError> {
        while self.pos >= self.current.len() {
            let next_chunk =
                if self.current_chunk == usize::MAX { 0 } else { self.current_chunk + 1 };
            if next_chunk >= self.chunks.len() {
                return Ok(None);
            }
            self.consumed_before += self.current.len() as u64;
            self.load_chunk(next_chunk)?;
        }
        let ev = self.current[self.pos];
        self.pos += 1;
        Ok(Some(ev))
    }

    /// The earliest node cycle among the not-yet-consumed events, or
    /// `u64::MAX` when the trace is exhausted. Exact — chunk manifests carry
    /// true minima, so unloaded chunks need no decode.
    pub fn min_pending_cycle(&self) -> u64 {
        let in_current = self.current_min_suffix.get(self.pos).copied().unwrap_or(u64::MAX);
        let next_chunk = if self.current_chunk == usize::MAX {
            0
        } else {
            self.current_chunk + 1
        };
        in_current.min(self.meta_min_suffix.get(next_chunk).copied().unwrap_or(u64::MAX))
    }

    /// Repositions the cursor so that exactly `consumed` events precede it
    /// (loading the containing chunk) — checkpoint-restore support for
    /// [`TraceTraffic`].
    ///
    /// # Errors
    ///
    /// [`TraceError::Corrupt`] when `consumed` exceeds the trace length;
    /// chunk read failures.
    pub fn seek(&mut self, consumed: u64) -> Result<(), TraceError> {
        if consumed > self.total_events {
            return Err(TraceError::Corrupt("seek past end of trace"));
        }
        let mut before = 0u64;
        for index in 0..self.chunks.len() {
            let events = self.chunks[index].events;
            if consumed < before + events {
                if self.current_chunk != index {
                    self.load_chunk(index)?;
                }
                self.pos = (consumed - before) as usize;
                self.consumed_before = before;
                return Ok(());
            }
            before += events;
        }
        // Exactly at the end: park on an empty resident chunk.
        self.current.clear();
        self.current_min_suffix.clear();
        self.current_chunk = self.chunks.len().saturating_sub(1);
        if self.chunks.is_empty() {
            self.current_chunk = usize::MAX;
        }
        self.pos = 0;
        self.consumed_before = consumed;
        Ok(())
    }
}

// --------------------------------------------------------------------------
// Recording traffic
// --------------------------------------------------------------------------

/// Wraps a live [`TrafficSpec`] and records every generation event into a
/// shared [`TraceWriter`] handle, while delegating every trait method to
/// the wrapped source — the recorded run is bit-identical to an unrecorded
/// one.
///
/// The writer travels behind `Arc<Mutex<…>>` because the simulation takes
/// ownership of its traffic box: keep a clone of the handle and call
/// [`TraceWriter::finish`] on it after the run.
#[derive(Debug)]
pub struct RecordingTraffic {
    inner: Box<dyn TrafficSpec>,
    writer: Arc<Mutex<TraceWriter>>,
    /// `node → tenant slot` table stamped into events (0 for every node
    /// when recording without a tenant map).
    tenant_slots: Option<Vec<u32>>,
}

impl RecordingTraffic {
    /// Wraps `inner`, recording into `writer`.
    pub fn new(inner: Box<dyn TrafficSpec>, writer: Arc<Mutex<TraceWriter>>) -> Self {
        RecordingTraffic { inner, writer, tenant_slots: None }
    }

    /// Stamps each recorded event with the source node's accounting slot
    /// from `map` (mirror of the partition installed via
    /// [`NocSimulation::set_tenant_map`](crate::NocSimulation::set_tenant_map)).
    #[must_use]
    pub fn with_tenants(mut self, map: &TenantMap) -> Self {
        self.tenant_slots = Some(map.assignments().to_vec());
        self
    }
}

impl TrafficSpec for RecordingTraffic {
    fn packet_length(&self) -> usize {
        self.inner.packet_length()
    }

    fn offered_load(&self) -> f64 {
        self.inner.offered_load()
    }

    fn maybe_generate(
        &mut self,
        src: usize,
        node_cycle: u64,
        topo: &Topology,
        rng: &mut StdRng,
    ) -> Option<usize> {
        let dst = self.inner.maybe_generate(src, node_cycle, topo, rng)?;
        let tenant = self.tenant_slots.as_ref().map_or(0, |slots| slots[src]);
        self.writer.lock().expect("trace writer poisoned").record(TraceEvent {
            node_cycle,
            src: src as u32,
            dst: dst as u32,
            tenant,
        });
        Some(dst)
    }

    fn silent_node_cycles(&self, from_node_cycle: u64) -> u64 {
        self.inner.silent_node_cycles(from_node_cycle)
    }

    fn skip_node_cycles(&mut self, node_cycles: u64) {
        self.inner.skip_node_cycles(node_cycles);
    }

    // Checkpoint state delegates to the wrapped source; the trace file
    // position is deliberately not part of it — a restored run re-records
    // from its resume point into whatever writer it is handed.
    fn save_extra_state(&self, out: &mut Vec<u8>) {
        self.inner.save_extra_state(out);
    }

    fn load_extra_state(&mut self, bytes: &[u8]) -> bool {
        self.inner.load_extra_state(bytes)
    }
}

// --------------------------------------------------------------------------
// Replay traffic
// --------------------------------------------------------------------------

/// Replays a recorded trace as a [`TrafficSpec`]: each event re-injects at
/// exactly its recorded `(node_cycle, src)`, no RNG is drawn, and idle gaps
/// are declared silent so the event-horizon engine skips them.
///
/// See the [module docs](self) for the determinism contract;
/// [`missed_events`](Self::missed_events) counts events whose slot passed
/// without a matching query (schedule divergence).
#[derive(Debug)]
pub struct TraceTraffic {
    reader: TraceReader,
    /// The next unmatched event, in record order.
    head: Option<TraceEvent>,
    offered_load: f64,
    /// Source of the previous query — a drop marks a new generation batch.
    last_src: usize,
    /// Cycles strictly below this bound can no longer be queried; a head
    /// below it is a missed event.
    completed_through: u64,
    missed: u64,
    replayed: u64,
    error: Option<TraceError>,
}

impl TraceTraffic {
    /// Opens a finished trace for replay.
    ///
    /// # Errors
    ///
    /// Everything [`TraceReader::open`] raises, plus decode failures of the
    /// first chunk.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, TraceError> {
        let mut reader = TraceReader::open(dir)?;
        let head = reader.next()?;
        let span_cycles = reader.chunks.iter().map(|c| c.max_cycle + 1).max().unwrap_or(0);
        let offered_load = if span_cycles == 0 || reader.node_count == 0 {
            0.0
        } else {
            (reader.total_events * reader.packet_length as u64) as f64
                / (span_cycles as f64 * reader.node_count as f64)
        };
        Ok(TraceTraffic {
            reader,
            head,
            offered_load,
            last_src: usize::MAX,
            completed_through: 0,
            missed: 0,
            replayed: 0,
            error: None,
        })
    }

    /// Events re-injected so far.
    pub fn events_replayed(&self) -> u64 {
        self.replayed
    }

    /// Events not yet re-injected (or missed).
    pub fn events_pending(&self) -> u64 {
        self.reader.total_events() - self.replayed - self.missed
    }

    /// Events whose recorded slot passed without a matching generation
    /// query. Nonzero means the replay run's generation schedule diverged
    /// from the recording (different clock trajectory) — the replay is then
    /// not a bit-exact reproduction.
    pub fn missed_events(&self) -> u64 {
        self.missed
    }

    /// Chunk files decoded so far (see [`TraceReader::chunk_loads`]).
    pub fn chunk_loads(&self) -> u64 {
        self.reader.chunk_loads()
    }

    /// Node count of the recorded network (the replay network must match).
    pub fn node_count(&self) -> usize {
        self.reader.node_count()
    }

    /// A chunk read/decode error encountered mid-replay, if any. Replay
    /// treats a failed chunk load as end-of-trace rather than panicking on
    /// the simulation hot path; check this after the run.
    pub fn error(&self) -> Option<&TraceError> {
        self.error.as_ref()
    }

    fn advance_head(&mut self) {
        self.head = match self.reader.next() {
            Ok(head) => head,
            Err(e) => {
                self.error = Some(e);
                None
            }
        };
    }
}

impl TrafficSpec for TraceTraffic {
    fn packet_length(&self) -> usize {
        self.reader.packet_length()
    }

    fn offered_load(&self) -> f64 {
        self.offered_load
    }

    fn maybe_generate(
        &mut self,
        src: usize,
        node_cycle: u64,
        _topo: &Topology,
        _rng: &mut StdRng,
    ) -> Option<usize> {
        // Queries sweep nodes in ascending order within a generation batch,
        // so a source drop marks a batch boundary: the new batch starts at
        // this query's cycle, and every earlier cycle is complete.
        if src < self.last_src {
            self.completed_through = node_cycle;
        }
        self.last_src = src;
        while let Some(head) = self.head {
            if head.node_cycle < self.completed_through {
                self.missed += 1;
                self.advance_head();
            } else {
                break;
            }
        }
        match self.head {
            Some(head) if head.node_cycle == node_cycle && head.src as usize == src => {
                self.replayed += 1;
                self.advance_head();
                Some(head.dst as usize)
            }
            _ => None,
        }
    }

    fn silent_node_cycles(&self, from_node_cycle: u64) -> u64 {
        // Exact silence bound: nothing can generate before the earliest
        // pending event (replay draws no RNG at all, so every event-free
        // node cycle is silent).
        let earliest = self
            .head
            .map_or(u64::MAX, |h| h.node_cycle)
            .min(self.reader.min_pending_cycle());
        if earliest == u64::MAX {
            return u64::MAX;
        }
        earliest.saturating_sub(from_node_cycle)
    }

    // The default `skip_node_cycles` no-op is correct: matching is on
    // absolute cycles, so skipped spans need no positional catch-up.

    fn save_extra_state(&self, out: &mut Vec<u8>) {
        let mut w = SnapWriter::new();
        w.put_u64(self.reader.consumed());
        w.put_u64(self.replayed);
        w.put_u64(self.missed);
        w.put_u64(self.completed_through);
        w.put_opt_u64((self.last_src != usize::MAX).then_some(self.last_src as u64));
        w.put_bool(self.head.is_some());
        if let Some(h) = self.head {
            w.put_u64(h.node_cycle);
            w.put_u32(h.src);
            w.put_u32(h.dst);
            w.put_u32(h.tenant);
        }
        out.extend_from_slice(&w.into_vec());
    }

    fn load_extra_state(&mut self, bytes: &[u8]) -> bool {
        let mut r = SnapReader::new(bytes);
        let Ok(consumed) = r.read_u64() else { return false };
        let Ok(replayed) = r.read_u64() else { return false };
        let Ok(missed) = r.read_u64() else { return false };
        let Ok(completed_through) = r.read_u64() else { return false };
        let Ok(last_src) = r.read_opt_u64() else { return false };
        let Ok(has_head) = r.read_bool() else { return false };
        let head = if has_head {
            let (Ok(node_cycle), Ok(src), Ok(dst), Ok(tenant)) =
                (r.read_u64(), r.read_u32(), r.read_u32(), r.read_u32())
            else {
                return false;
            };
            Some(TraceEvent { node_cycle, src, dst, tenant })
        } else {
            None
        };
        if r.finish().is_err() {
            return false;
        }
        if self.reader.seek(consumed).is_err() {
            return false;
        }
        self.replayed = replayed;
        self.missed = missed;
        self.completed_through = completed_through;
        self.last_src = last_src.map_or(usize::MAX, |s| s as usize);
        self.head = head;
        self.error = None;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("noc-trace-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn event(node_cycle: u64, src: u32, dst: u32, tenant: u32) -> TraceEvent {
        TraceEvent { node_cycle, src, dst, tenant }
    }

    #[test]
    fn varints_round_trip() {
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX - 1, u64::MAX];
        let mut w = SnapWriter::new();
        for &v in &values {
            put_varint(&mut w, v);
        }
        let bytes = w.into_vec();
        let mut r = SnapReader::new(&bytes);
        for &v in &values {
            assert_eq!(read_varint(&mut r).unwrap(), v);
        }
        r.finish().unwrap();
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn write_read_round_trip_across_chunks() {
        let dir = tmpdir("roundtrip");
        let mut writer = TraceWriter::create(&dir, 5, 16, 4).unwrap();
        // 11 events over a 3-cycle batch pattern — crosses two chunk
        // boundaries with a 4-event chunk budget.
        let mut events = Vec::new();
        for batch in 0..4u64 {
            for src in 0..3u32 {
                if (batch + u64::from(src)) % 2 == 0 {
                    events.push(event(batch * 10 + u64::from(src % 2), src, src + 1, src % 2));
                }
            }
        }
        for &ev in &events {
            writer.record(ev);
        }
        let summary = writer.finish().unwrap();
        assert_eq!(summary.events, events.len() as u64);
        assert_eq!(summary.chunks, events.len().div_ceil(4));

        let mut reader = TraceReader::open(&dir).unwrap();
        assert_eq!(reader.packet_length(), 5);
        assert_eq!(reader.node_count(), 16);
        assert_eq!(reader.total_events(), events.len() as u64);
        let mut back = Vec::new();
        while let Some(ev) = reader.next().unwrap() {
            back.push(ev);
        }
        assert_eq!(back, events);
        assert_eq!(reader.chunk_loads(), summary.chunks as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn finish_is_idempotent_and_unfinished_traces_do_not_open() {
        let dir = tmpdir("finish");
        let mut writer = TraceWriter::create(&dir, 5, 4, 8).unwrap();
        writer.record(event(3, 1, 2, 0));
        assert!(TraceReader::open(&dir).is_err(), "no manifest before finish");
        let a = writer.finish().unwrap();
        let b = writer.finish().unwrap();
        assert_eq!(a, b);
        assert_eq!(TraceReader::open(&dir).unwrap().total_events(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn min_pending_cycle_is_exact_across_chunks() {
        let dir = tmpdir("minpending");
        let mut writer = TraceWriter::create(&dir, 5, 4, 2).unwrap();
        // Record order is batch-major: cycles within a chunk are not
        // sorted; chunk 1 holds an earlier cycle (7) than chunk 0's last.
        for &ev in
            &[event(5, 0, 1, 0), event(9, 1, 2, 0), event(7, 2, 3, 0), event(12, 0, 3, 0)]
        {
            writer.record(ev);
        }
        writer.finish().unwrap();
        let mut reader = TraceReader::open(&dir).unwrap();
        assert_eq!(reader.min_pending_cycle(), 5);
        reader.next().unwrap();
        assert_eq!(reader.min_pending_cycle(), 7, "chunk-1 minimum, not chunk-0 order");
        reader.next().unwrap();
        assert_eq!(reader.min_pending_cycle(), 7);
        reader.next().unwrap();
        assert_eq!(reader.min_pending_cycle(), 12);
        reader.next().unwrap();
        assert_eq!(reader.min_pending_cycle(), u64::MAX);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seek_lands_on_the_right_event() {
        let dir = tmpdir("seek");
        let mut writer = TraceWriter::create(&dir, 5, 4, 3).unwrap();
        let events: Vec<TraceEvent> =
            (0..10).map(|i| event(i * 2, (i % 4) as u32, ((i + 1) % 4) as u32, 0)).collect();
        for &ev in &events {
            writer.record(ev);
        }
        writer.finish().unwrap();
        let mut reader = TraceReader::open(&dir).unwrap();
        for &target in &[7u64, 0, 9, 3, 10] {
            reader.seek(target).unwrap();
            assert_eq!(reader.consumed(), target);
            assert_eq!(reader.next().unwrap(), events.get(target as usize).copied());
        }
        assert!(reader.seek(11).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_chunks_are_rejected() {
        let dir = tmpdir("corrupt");
        let mut writer = TraceWriter::create(&dir, 5, 4, 8).unwrap();
        writer.record(event(3, 1, 2, 0));
        writer.record(event(4, 2, 3, 1));
        writer.finish().unwrap();
        // Truncate the chunk: decode must fail, not panic or misread.
        let chunk = chunk_file(&dir, 0);
        let bytes = std::fs::read(&chunk).unwrap();
        std::fs::write(&chunk, &bytes[..bytes.len() - 1]).unwrap();
        let mut reader = TraceReader::open(&dir).unwrap();
        assert!(reader.next().is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_matches_heads_and_counts_misses() {
        let dir = tmpdir("replay");
        let mut writer = TraceWriter::create(&dir, 5, 4, 8).unwrap();
        for &ev in &[event(2, 1, 3, 0), event(5, 0, 2, 0), event(5, 2, 0, 0)] {
            writer.record(ev);
        }
        writer.finish().unwrap();
        let mut replay = TraceTraffic::open(&dir).unwrap();
        let topo = Topology::mesh(2, 2);
        let mut rng = rand::SeedableRng::seed_from_u64(0);
        // Cycle 0..2: silent.
        assert_eq!(replay.silent_node_cycles(0), 2);
        // Batch at cycle 2: only src 1 fires.
        for src in 0..4 {
            let got = replay.maybe_generate(src, 2, &topo, &mut rng);
            assert_eq!(got, (src == 1).then_some(3));
        }
        assert_eq!(replay.silent_node_cycles(3), 2);
        // Batch at cycle 5: src 0 and src 2 fire.
        for src in 0..4 {
            let got = replay.maybe_generate(src, 5, &topo, &mut rng);
            let want = match src {
                0 => Some(2),
                2 => Some(0),
                _ => None,
            };
            assert_eq!(got, want);
        }
        assert_eq!(replay.events_replayed(), 3);
        assert_eq!(replay.events_pending(), 0);
        assert_eq!(replay.missed_events(), 0);
        assert_eq!(replay.silent_node_cycles(6), u64::MAX);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn schedule_divergence_is_counted_not_retimed() {
        let dir = tmpdir("diverge");
        let mut writer = TraceWriter::create(&dir, 5, 4, 8).unwrap();
        writer.record(event(2, 1, 3, 0));
        writer.record(event(6, 2, 0, 0));
        writer.finish().unwrap();
        let mut replay = TraceTraffic::open(&dir).unwrap();
        let topo = Topology::mesh(2, 2);
        let mut rng = rand::SeedableRng::seed_from_u64(0);
        // The replay run's schedule jumps straight to cycle 4: the cycle-2
        // event's slot has passed once the cycle-4 batch starts.
        for src in 0..4 {
            assert_eq!(replay.maybe_generate(src, 4, &topo, &mut rng), None);
        }
        assert_eq!(replay.missed_events(), 1);
        // The cycle-6 event still replays on time.
        for src in 0..4 {
            let got = replay.maybe_generate(src, 6, &topo, &mut rng);
            assert_eq!(got, (src == 2).then_some(0));
        }
        assert_eq!(replay.missed_events(), 1);
        assert_eq!(replay.events_replayed(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_state_checkpoints_and_restores() {
        let dir = tmpdir("ckpt");
        let mut writer = TraceWriter::create(&dir, 5, 4, 2).unwrap();
        for i in 0..6u64 {
            writer.record(event(i * 3, (i % 4) as u32, ((i + 1) % 4) as u32, 0));
        }
        writer.finish().unwrap();
        let topo = Topology::mesh(2, 2);
        let mut rng = rand::SeedableRng::seed_from_u64(0);
        let mut replay = TraceTraffic::open(&dir).unwrap();
        for src in 0..4 {
            replay.maybe_generate(src, 0, &topo, &mut rng);
            replay.maybe_generate(src, 3, &topo, &mut rng);
        }
        let mut blob = Vec::new();
        replay.save_extra_state(&mut blob);
        let mut restored = TraceTraffic::open(&dir).unwrap();
        assert!(restored.load_extra_state(&blob));
        assert_eq!(restored.events_replayed(), replay.events_replayed());
        // Both continue identically.
        for cycle in [6u64, 9, 12, 15] {
            for src in 0..4 {
                assert_eq!(
                    replay.maybe_generate(src, cycle, &topo, &mut rng),
                    restored.maybe_generate(src, cycle, &topo, &mut rng),
                );
            }
        }
        assert_eq!(replay.events_pending(), 0);
        assert_eq!(restored.events_pending(), 0);
        assert!(!restored.load_extra_state(&[1, 2, 3]));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
