//! Activity-driven router/link power model.
//!
//! The model mirrors what the paper obtains from gate-level power estimation
//! driven by Booksim activity traces:
//!
//! * every switching event recorded by the simulator (buffer write/read,
//!   crossbar traversal, allocation, link traversal, ejection) costs a fixed
//!   energy at the nominal corner, scaled by `(Vdd/V₀)²` when the voltage is
//!   lowered;
//! * the clock tree burns dynamic power proportional to `f · Vdd²` whether or
//!   not flits are moving (this is what makes DVFS worthwhile at low load);
//! * leakage scales super-linearly with the supply voltage (`(Vdd/V₀)³`),
//!   which is characteristic of FDSOI bodies at low voltage.
//!
//! The default constants are calibrated so that the paper-baseline 5×5 mesh
//! reproduces the absolute range of Fig. 6 (≈60 mW idle → ≈230 mW at a 0.4
//! injection rate, no DVFS); see `DESIGN.md` for the derivation.

use crate::report::PowerReport;
use crate::tech::Volts;
use noc_sim::{Hertz, NetworkActivity, RouterActivity};
use serde::{Deserialize, Serialize};

/// Energy-per-event and static-power constants at the nominal corner
/// (1 GHz, 0.90 V).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerParams {
    /// Energy of one flit write into an input buffer, picojoules.
    pub buffer_write_pj: f64,
    /// Energy of one flit read from an input buffer, picojoules.
    pub buffer_read_pj: f64,
    /// Energy of one flit crossing the crossbar, picojoules.
    pub crossbar_pj: f64,
    /// Energy of one virtual-channel allocation (per packet), picojoules.
    pub vc_alloc_pj: f64,
    /// Energy of one switch-allocation grant (per flit), picojoules.
    pub sw_alloc_pj: f64,
    /// Energy of one flit traversing an inter-router link, picojoules.
    pub link_pj: f64,
    /// Energy of one flit delivered to the local node, picojoules.
    pub eject_pj: f64,
    /// Clock-tree (plus idle pipeline) power of one router at the nominal
    /// corner, milliwatts.
    pub clock_tree_mw: f64,
    /// Leakage power of one router (and its link drivers) at the nominal
    /// voltage, milliwatts.
    pub leakage_mw: f64,
    /// Nominal supply voltage the energies are referenced to, volts.
    pub nominal_vdd: f64,
    /// Nominal clock frequency the clock-tree power is referenced to, hertz.
    pub nominal_frequency_hz: f64,
    /// Exponent of the leakage-vs-voltage dependence.
    pub leakage_voltage_exponent: f64,
    /// Fraction of the active leakage a **power-gated** router still burns
    /// (retention cells, always-on wakeup logic, sleep-transistor leakage).
    pub gated_leakage_fraction: f64,
    /// Energy of one sleep (power-down) transition at the nominal voltage,
    /// picojoules (drain/isolation sequencing, state retention).
    pub sleep_transition_pj: f64,
    /// Energy of one wake (power-up) transition at the nominal voltage,
    /// picojoules (virtual-rail recharge — the dominant transition cost).
    pub wake_transition_pj: f64,
}

impl PowerParams {
    /// The calibration used throughout the reproduction (see module docs).
    pub fn calibrated_28nm() -> Self {
        PowerParams {
            buffer_write_pj: 1.1,
            buffer_read_pj: 0.9,
            crossbar_pj: 1.2,
            vc_alloc_pj: 0.5,
            sw_alloc_pj: 0.15,
            link_pj: 0.9,
            eject_pj: 0.4,
            clock_tree_mw: 1.8,
            leakage_mw: 0.6,
            nominal_vdd: 0.90,
            nominal_frequency_hz: 1.0e9,
            leakage_voltage_exponent: 3.0,
            gated_leakage_fraction: 0.08,
            sleep_transition_pj: 20.0,
            wake_transition_pj: 40.0,
        }
    }
}

impl Default for PowerParams {
    fn default() -> Self {
        PowerParams::calibrated_28nm()
    }
}

/// Energy consumed over one observation interval, split into dynamic and
/// static components (picojoules).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Switching + clock-tree energy, picojoules.
    pub dynamic_pj: f64,
    /// Leakage energy, picojoules.
    pub static_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.dynamic_pj + self.static_pj
    }
}

impl std::ops::Add for EnergyBreakdown {
    type Output = EnergyBreakdown;
    fn add(self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            dynamic_pj: self.dynamic_pj + rhs.dynamic_pj,
            static_pj: self.static_pj + rhs.static_pj,
        }
    }
}

impl std::ops::AddAssign for EnergyBreakdown {
    fn add_assign(&mut self, rhs: EnergyBreakdown) {
        *self = *self + rhs;
    }
}

/// Converts simulated switching activity into energy and power at a given
/// `(frequency, Vdd)` operating point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterPowerModel {
    params: PowerParams,
}

impl RouterPowerModel {
    /// Creates the model with the calibrated 28-nm constants.
    pub fn new() -> Self {
        RouterPowerModel { params: PowerParams::calibrated_28nm() }
    }

    /// Creates the model with caller-provided constants (for ablations).
    pub fn with_params(params: PowerParams) -> Self {
        RouterPowerModel { params }
    }

    /// The constants in use.
    pub fn params(&self) -> &PowerParams {
        &self.params
    }

    /// Energy consumed by one router over an interval of `duration_ps`
    /// picoseconds during which it ran at (`frequency`, `vdd`) and produced
    /// `activity`.
    ///
    /// Power gating enters through the activity record: the fraction
    /// `gated_cycles / cycles` of the interval contributes no clock-tree
    /// energy and only [`PowerParams::gated_leakage_fraction`] of the
    /// leakage, while every sleep/wake transition costs its
    /// [`PowerParams::sleep_transition_pj`] /
    /// [`PowerParams::wake_transition_pj`] (voltage-scaled like any
    /// switching event). With no gated residency and no transitions the
    /// result is bit-identical to the ungated model.
    pub fn router_energy(
        &self,
        activity: &RouterActivity,
        frequency: Hertz,
        vdd: Volts,
        duration_ps: f64,
    ) -> EnergyBreakdown {
        assert!(duration_ps >= 0.0 && duration_ps.is_finite(), "interval must be non-negative");
        let p = &self.params;
        let v_ratio = vdd.as_volts() / p.nominal_vdd;
        let v2 = v_ratio * v_ratio;
        let duration_ns = duration_ps / 1.0e3;

        let event_pj = activity.buffer_writes as f64 * p.buffer_write_pj
            + activity.buffer_reads as f64 * p.buffer_read_pj
            + activity.crossbar_traversals as f64 * p.crossbar_pj
            + activity.vc_allocations as f64 * p.vc_alloc_pj
            + activity.switch_allocations as f64 * p.sw_alloc_pj
            + activity.link_flits as f64 * p.link_pj
            + activity.ejected_flits as f64 * p.eject_pj;

        // Split the interval into powered and gated time by the activity
        // record's cycle counters. The `gated_ns == 0` path keeps
        // `active_ns == duration_ns` exactly (and adds exact zeros below),
        // so an ungated record prices bit-identically to the historical
        // model — pinned by the golden-figure tests.
        let (active_ns, gated_ns) = if activity.gated_cycles > 0 && activity.cycles > 0 {
            let gated_ns =
                duration_ns * (activity.gated_cycles as f64 / activity.cycles as f64);
            (duration_ns - gated_ns, gated_ns)
        } else {
            (duration_ns, 0.0)
        };

        // Clock-tree power scales with f·V²; expressed as energy over the
        // powered part of the interval (mW · ns = pJ) — the clock is off
        // while the router is gated.
        let f_ratio = frequency.as_hz() / p.nominal_frequency_hz;
        let clock_pj = p.clock_tree_mw * f_ratio * v2 * active_ns;

        let leak_pj = p.leakage_mw
            * v_ratio.powf(p.leakage_voltage_exponent)
            * (active_ns + gated_ns * p.gated_leakage_fraction);

        let transition_pj = activity.sleep_events as f64 * p.sleep_transition_pj
            + activity.wake_events as f64 * p.wake_transition_pj;

        EnergyBreakdown {
            dynamic_pj: event_pj * v2 + clock_pj + transition_pj * v2,
            static_pj: leak_pj,
        }
    }

    /// Power saved while one router is gated at (`frequency`, `vdd`),
    /// milliwatts: the clock-tree power plus the non-retained share of the
    /// leakage.
    pub fn gated_saving_mw(&self, frequency: Hertz, vdd: Volts) -> f64 {
        let p = &self.params;
        let v_ratio = vdd.as_volts() / p.nominal_vdd;
        let v2 = v_ratio * v_ratio;
        let f_ratio = frequency.as_hz() / p.nominal_frequency_hz;
        p.clock_tree_mw * f_ratio * v2
            + p.leakage_mw
                * v_ratio.powf(p.leakage_voltage_exponent)
                * (1.0 - p.gated_leakage_fraction)
    }

    /// Energy of `sleep_events` power-downs plus `wake_events` power-ups at
    /// `vdd`, picojoules.
    pub fn transition_energy_pj(&self, sleep_events: u64, wake_events: u64, vdd: Volts) -> f64 {
        let p = &self.params;
        let v_ratio = vdd.as_volts() / p.nominal_vdd;
        (sleep_events as f64 * p.sleep_transition_pj + wake_events as f64 * p.wake_transition_pj)
            * (v_ratio * v_ratio)
    }

    /// The gating **break-even time** at (`frequency`, `vdd`), picoseconds:
    /// how long a router must stay gated for the clock + leakage saving to
    /// repay one full sleep + wake transition pair. A gating policy should
    /// only power a router down when it expects the idle period to exceed
    /// this (the classic timeout policy *waits* this long before sleeping,
    /// which is 2-competitive with the offline optimum).
    pub fn break_even_ps(&self, frequency: Hertz, vdd: Volts) -> f64 {
        let saved_mw = self.gated_saving_mw(frequency, vdd);
        if saved_mw <= 0.0 {
            return f64::INFINITY;
        }
        self.transition_energy_pj(1, 1, vdd) / saved_mw * 1.0e3
    }

    /// Average power (milliwatts) of one router over the interval.
    pub fn router_power_mw(
        &self,
        activity: &RouterActivity,
        frequency: Hertz,
        vdd: Volts,
        duration_ps: f64,
    ) -> f64 {
        assert!(duration_ps > 0.0, "power needs a positive interval");
        self.router_energy(activity, frequency, vdd, duration_ps).total_pj() / (duration_ps / 1.0e3)
    }

    /// Energy consumed by the whole NoC over an interval.
    ///
    /// Idle routers take a fast path: their switching-event energy is exactly
    /// zero, so their contribution is the clock-tree + leakage energy, which
    /// depends only on `(frequency, vdd, duration_ps)` and is computed once
    /// per call. For a drained network between measurement windows (a light
    /// DVFS sweep's common case) the per-interval cost collapses from one
    /// full energy evaluation per router to one total. The per-router value
    /// is the same `f64` either way, and routers are folded in the same
    /// order, so the result is bit-identical to the naive loop.
    pub fn network_energy(
        &self,
        activity: &NetworkActivity,
        frequency: Hertz,
        vdd: Volts,
        duration_ps: f64,
    ) -> EnergyBreakdown {
        let idle = self.router_energy(&RouterActivity::new(), frequency, vdd, duration_ps);
        activity
            .routers
            .iter()
            .map(|r| {
                if r.is_idle() {
                    idle
                } else {
                    self.router_energy(r, frequency, vdd, duration_ps)
                }
            })
            .fold(EnergyBreakdown::default(), |acc, e| acc + e)
    }

    /// Energy consumed by the routers of **one voltage-frequency island**
    /// over an interval during which that island ran at (`frequency`,
    /// `vdd`).
    ///
    /// `island_of` assigns each router (by node id) to an island, exactly as
    /// [`RegionMap::assignments`](noc_sim::RegionMap::assignments) reports
    /// it; only the routers of `island` contribute. Idle routers take the
    /// same fast path as [`network_energy`](Self::network_energy), each
    /// router's contribution is the same `f64` either way, and routers are
    /// folded in ascending node order — for the single-island partition the
    /// result is therefore bit-identical to
    /// [`network_energy`](Self::network_energy).
    ///
    /// # Panics
    ///
    /// Panics if `island_of` is shorter than the activity record.
    pub fn island_energy(
        &self,
        activity: &NetworkActivity,
        island_of: &[u32],
        island: u32,
        frequency: Hertz,
        vdd: Volts,
        duration_ps: f64,
    ) -> EnergyBreakdown {
        assert!(
            island_of.len() >= activity.routers.len(),
            "island assignment must cover every router"
        );
        let idle = self.router_energy(&RouterActivity::new(), frequency, vdd, duration_ps);
        activity
            .routers
            .iter()
            .zip(island_of.iter())
            .filter(|(_, &i)| i == island)
            .map(|(r, _)| {
                if r.is_idle() {
                    idle
                } else {
                    self.router_energy(r, frequency, vdd, duration_ps)
                }
            })
            .fold(EnergyBreakdown::default(), |acc, e| acc + e)
    }

    /// Energy consumed by the routers assigned to **one tenant slot** over
    /// an interval during which the fabric ran at (`frequency`, `vdd`).
    ///
    /// `slot_of` assigns each router (by node id) to a tenant slot, exactly
    /// as [`TenantMap::assignments`](noc_sim::TenantMap::assignments)
    /// reports it (slot `tenant_count` being the background slot for
    /// unmapped nodes); only the routers of `slot` contribute. This is the
    /// same fold as [`island_energy`](Self::island_energy) keyed by a
    /// different partition: idle routers take the fast path, each router's
    /// contribution is the same `f64` either way, and routers fold in
    /// ascending node order — so summing over every slot of a
    /// [`TenantMap`](noc_sim::TenantMap) is bit-identical to
    /// [`network_energy`](Self::network_energy) on the whole fabric.
    ///
    /// # Panics
    ///
    /// Panics if `slot_of` is shorter than the activity record.
    pub fn tenant_energy(
        &self,
        activity: &NetworkActivity,
        slot_of: &[u32],
        slot: u32,
        frequency: Hertz,
        vdd: Volts,
        duration_ps: f64,
    ) -> EnergyBreakdown {
        assert!(
            slot_of.len() >= activity.routers.len(),
            "tenant assignment must cover every router"
        );
        let idle = self.router_energy(&RouterActivity::new(), frequency, vdd, duration_ps);
        activity
            .routers
            .iter()
            .zip(slot_of.iter())
            .filter(|(_, &s)| s == slot)
            .map(|(r, _)| {
                if r.is_idle() {
                    idle
                } else {
                    self.router_energy(r, frequency, vdd, duration_ps)
                }
            })
            .fold(EnergyBreakdown::default(), |acc, e| acc + e)
    }

    /// Average power of the whole NoC over an interval, with a per-router
    /// breakdown.
    pub fn network_power(
        &self,
        activity: &NetworkActivity,
        frequency: Hertz,
        vdd: Volts,
        duration_ps: f64,
    ) -> PowerReport {
        assert!(duration_ps > 0.0, "power needs a positive interval");
        let duration_ns = duration_ps / 1.0e3;
        let idle = self.router_energy(&RouterActivity::new(), frequency, vdd, duration_ps);
        let mut report = PowerReport::new();
        for router in &activity.routers {
            let e = if router.is_idle() {
                idle
            } else {
                self.router_energy(router, frequency, vdd, duration_ps)
            };
            report.per_router_mw.push(e.total_pj() / duration_ns);
            report.dynamic_mw += e.dynamic_pj / duration_ns;
            report.static_mw += e.static_pj / duration_ns;
        }
        report
    }
}

impl Default for RouterPowerModel {
    fn default() -> Self {
        RouterPowerModel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::FdsoiTech;

    fn busy_activity(cycles: u64, flits: u64) -> RouterActivity {
        RouterActivity {
            buffer_writes: flits,
            buffer_reads: flits,
            crossbar_traversals: flits,
            vc_allocations: flits / 20,
            switch_allocations: flits,
            link_flits: flits,
            ejected_flits: 0,
            cycles,
            ..RouterActivity::new()
        }
    }

    #[test]
    fn idle_fast_path_is_bit_identical_to_the_naive_fold() {
        let model = RouterPowerModel::new();
        let tech = FdsoiTech::new();
        let f = Hertz::from_mhz(600.0);
        let vdd = tech.vdd_for_frequency(f);
        let duration_ps = 2.5e6;
        // Mostly idle network with one busy router: the shape the fast path
        // targets (a drained network between measurement windows).
        let mut net = NetworkActivity::new(5);
        net.routers[2] = busy_activity(1_000, 321);
        let fast = model.network_energy(&net, f, vdd, duration_ps);
        let naive = net
            .routers
            .iter()
            .map(|r| model.router_energy(r, f, vdd, duration_ps))
            .fold(EnergyBreakdown::default(), |acc, e| acc + e);
        assert_eq!(fast.dynamic_pj.to_bits(), naive.dynamic_pj.to_bits());
        assert_eq!(fast.static_pj.to_bits(), naive.static_pj.to_bits());
    }

    #[test]
    fn island_energy_partitions_the_network_fold() {
        let model = RouterPowerModel::new();
        let f = Hertz::from_ghz(1.0);
        let vdd = Volts::new(0.9);
        let duration_ps = 1.0e6;
        let mut net = NetworkActivity::new(6);
        net.routers[1] = busy_activity(1_000, 200);
        net.routers[4] = busy_activity(1_000, 900);
        let island_of = [0u32, 0, 1, 1, 1, 0];
        let a = model.island_energy(&net, &island_of, 0, f, vdd, duration_ps);
        let b = model.island_energy(&net, &island_of, 1, f, vdd, duration_ps);
        let whole = model.network_energy(&net, f, vdd, duration_ps);
        // Same per-router f64 contributions, partitioned without overlap.
        assert!((a.total_pj() + b.total_pj() - whole.total_pj()).abs() < 1e-9);
        assert!(b.dynamic_pj > a.dynamic_pj, "island 1 holds the busiest router");
        // The single-island partition is bit-identical to the network fold.
        let single = model.island_energy(&net, &[0; 6], 0, f, vdd, duration_ps);
        assert_eq!(single.dynamic_pj.to_bits(), whole.dynamic_pj.to_bits());
        assert_eq!(single.static_pj.to_bits(), whole.static_pj.to_bits());
    }

    #[test]
    fn tenant_energy_partitions_the_network_fold() {
        let model = RouterPowerModel::new();
        let f = Hertz::from_ghz(1.0);
        let vdd = Volts::new(0.9);
        let duration_ps = 1.0e6;
        let mut net = NetworkActivity::new(6);
        net.routers[0] = busy_activity(1_000, 450);
        net.routers[5] = busy_activity(1_000, 120);
        // Two tenants plus the background slot (2) for unmapped nodes.
        let slot_of = [0u32, 2, 1, 1, 2, 0];
        let per_slot: f64 = (0..3)
            .map(|s| model.tenant_energy(&net, &slot_of, s, f, vdd, duration_ps).total_pj())
            .sum();
        let whole = model.network_energy(&net, f, vdd, duration_ps);
        assert!((per_slot - whole.total_pj()).abs() < 1e-9);
        // Single-slot partition is bit-identical to the network fold.
        let single = model.tenant_energy(&net, &[0; 6], 0, f, vdd, duration_ps);
        assert_eq!(single.dynamic_pj.to_bits(), whole.dynamic_pj.to_bits());
        assert_eq!(single.static_pj.to_bits(), whole.static_pj.to_bits());
    }

    #[test]
    #[should_panic(expected = "cover every router")]
    fn tenant_energy_rejects_short_assignments() {
        let model = RouterPowerModel::new();
        let net = NetworkActivity::new(4);
        let _ = model.tenant_energy(
            &net,
            &[0, 0],
            0,
            Hertz::from_ghz(1.0),
            Volts::new(0.9),
            1.0e6,
        );
    }

    #[test]
    #[should_panic(expected = "cover every router")]
    fn island_energy_rejects_short_assignments() {
        let model = RouterPowerModel::new();
        let net = NetworkActivity::new(4);
        let _ = model.island_energy(
            &net,
            &[0, 0],
            0,
            Hertz::from_ghz(1.0),
            Volts::new(0.9),
            1.0e6,
        );
    }

    #[test]
    fn idle_router_consumes_only_clock_and_leakage() {
        let model = RouterPowerModel::new();
        let idle = RouterActivity { cycles: 1_000, ..RouterActivity::new() };
        let p = model.router_power_mw(&idle, Hertz::from_ghz(1.0), Volts::new(0.9), 1.0e6);
        let expected = model.params().clock_tree_mw + model.params().leakage_mw;
        assert!((p - expected).abs() < 1e-9, "idle power {p} should equal clock + leakage");
    }

    #[test]
    fn power_scales_with_activity() {
        let model = RouterPowerModel::new();
        let duration_ps = 1.0e6;
        let low = model.router_power_mw(
            &busy_activity(1_000, 100),
            Hertz::from_ghz(1.0),
            Volts::new(0.9),
            duration_ps,
        );
        let high = model.router_power_mw(
            &busy_activity(1_000, 1_000),
            Hertz::from_ghz(1.0),
            Volts::new(0.9),
            duration_ps,
        );
        assert!(high > low);
    }

    #[test]
    fn voltage_scaling_is_quadratic_for_dynamic_energy() {
        let model = RouterPowerModel::new();
        let act = busy_activity(1_000, 1_000);
        let e_nom = model.router_energy(&act, Hertz::from_ghz(1.0), Volts::new(0.9), 1.0e6);
        let e_low = model.router_energy(&act, Hertz::from_ghz(1.0), Volts::new(0.45), 1.0e6);
        // Event energy at half the voltage is a quarter; the clock term also
        // scales by V² (frequency held constant here).
        assert!((e_low.dynamic_pj / e_nom.dynamic_pj - 0.25).abs() < 1e-9);
        // Leakage drops faster than quadratically.
        assert!(e_low.static_pj / e_nom.static_pj < 0.25);
    }

    #[test]
    fn slower_clock_reduces_clock_tree_energy_per_second_but_not_event_energy() {
        let model = RouterPowerModel::new();
        let act = busy_activity(1_000, 1_000);
        // Same activity and same *wall time*, lower frequency and voltage:
        let op_hi = (Hertz::from_ghz(1.0), Volts::new(0.9));
        let op_lo = (Hertz::from_mhz(333.0), Volts::new(0.56));
        let e_hi = model.router_energy(&act, op_hi.0, op_hi.1, 1.0e6);
        let e_lo = model.router_energy(&act, op_lo.0, op_lo.1, 1.0e6);
        assert!(
            e_lo.total_pj() < 0.55 * e_hi.total_pj(),
            "DVFS should cut energy by more than the voltage ratio alone"
        );
    }

    #[test]
    fn network_power_sums_router_power() {
        let model = RouterPowerModel::new();
        let mut net = NetworkActivity::new(4);
        for r in &mut net.routers {
            *r = busy_activity(1_000, 500);
        }
        let f = Hertz::from_ghz(1.0);
        let v = Volts::new(0.9);
        let report = model.network_power(&net, f, v, 1.0e6);
        let single = model.router_power_mw(&net.routers[0], f, v, 1.0e6);
        assert_eq!(report.per_router_mw.len(), 4);
        assert!((report.total_mw() - 4.0 * single).abs() < 1e-9);
    }

    #[test]
    fn energy_and_power_are_consistent() {
        let model = RouterPowerModel::new();
        let act = busy_activity(10_000, 3_000);
        let duration_ps = 5.0e6;
        let e = model.router_energy(&act, Hertz::from_mhz(700.0), Volts::new(0.75), duration_ps);
        let p = model.router_power_mw(&act, Hertz::from_mhz(700.0), Volts::new(0.75), duration_ps);
        assert!((p - e.total_pj() / (duration_ps / 1.0e3)).abs() < 1e-9);
    }

    #[test]
    fn baseline_mesh_idle_power_lands_near_sixty_milliwatts() {
        // 25 routers with no traffic at the nominal corner: the calibration
        // targets the bottom of Fig. 6 (~60 mW).
        let model = RouterPowerModel::new();
        let mut net = NetworkActivity::new(25);
        for r in &mut net.routers {
            r.cycles = 10_000;
        }
        let report =
            model.network_power(&net, Hertz::from_ghz(1.0), Volts::new(0.9), 10_000.0 * 1_000.0);
        assert!(
            report.total_mw() > 40.0 && report.total_mw() < 80.0,
            "idle 5x5 power {} mW outside the expected band",
            report.total_mw()
        );
    }

    #[test]
    fn dvfs_at_low_voltage_saves_at_least_2x_on_an_idle_mesh() {
        let model = RouterPowerModel::new();
        let tech = FdsoiTech::new();
        let mut net = NetworkActivity::new(25);
        for r in &mut net.routers {
            r.cycles = 10_000;
        }
        let hi = model.network_power(&net, Hertz::from_ghz(1.0), Volts::new(0.9), 1.0e7);
        let f_lo = Hertz::from_mhz(333.0);
        let lo = model.network_power(&net, f_lo, tech.vdd_for_frequency(f_lo), 1.0e7);
        assert!(hi.total_mw() / lo.total_mw() > 2.0);
    }

    #[test]
    fn gated_residency_cuts_clock_and_leakage_energy() {
        let model = RouterPowerModel::new();
        let f = Hertz::from_ghz(1.0);
        let vdd = Volts::new(0.9);
        let duration_ps = 1.0e7; // 10 µs
        let idle = RouterActivity { cycles: 10_000, ..RouterActivity::new() };
        let gated = RouterActivity { cycles: 10_000, gated_cycles: 10_000, ..RouterActivity::new() };
        let e_idle = model.router_energy(&idle, f, vdd, duration_ps);
        let e_gated = model.router_energy(&gated, f, vdd, duration_ps);
        // Fully gated: no clock-tree energy, only retained leakage.
        assert_eq!(e_gated.dynamic_pj, 0.0);
        let frac = model.params().gated_leakage_fraction;
        assert!((e_gated.static_pj / e_idle.static_pj - frac).abs() < 1e-12);
        // Half gated sits strictly between.
        let half = RouterActivity { cycles: 10_000, gated_cycles: 5_000, ..RouterActivity::new() };
        let e_half = model.router_energy(&half, f, vdd, duration_ps);
        assert!(e_half.total_pj() < e_idle.total_pj());
        assert!(e_half.total_pj() > e_gated.total_pj());
    }

    #[test]
    fn transition_events_cost_voltage_scaled_energy() {
        let model = RouterPowerModel::new();
        let f = Hertz::from_ghz(1.0);
        let act = RouterActivity { cycles: 1_000, sleep_events: 3, wake_events: 2, ..RouterActivity::new() };
        let base = RouterActivity { cycles: 1_000, ..RouterActivity::new() };
        let vdd = Volts::new(0.9);
        let delta = model.router_energy(&act, f, vdd, 1.0e6).dynamic_pj
            - model.router_energy(&base, f, vdd, 1.0e6).dynamic_pj;
        let p = model.params();
        assert!((delta - (3.0 * p.sleep_transition_pj + 2.0 * p.wake_transition_pj)).abs() < 1e-9);
        assert!((delta - model.transition_energy_pj(3, 2, vdd)).abs() < 1e-9);
        // At half the voltage the transition energy quarters.
        let low = model.transition_energy_pj(3, 2, Volts::new(0.45));
        assert!((low / model.transition_energy_pj(3, 2, vdd) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ungated_records_price_bit_identically_to_the_historical_model() {
        // The gating-aware energy path must collapse to the exact historical
        // arithmetic when no gating fields are set: same products, same
        // association, exact zero additions.
        let model = RouterPowerModel::new();
        let act = busy_activity(10_000, 1_234);
        let f = Hertz::from_mhz(700.0);
        let vdd = Volts::new(0.75);
        let duration_ps = 5.0e6;
        let e = model.router_energy(&act, f, vdd, duration_ps);
        let p = model.params();
        let v_ratio = vdd.as_volts() / p.nominal_vdd;
        let v2 = v_ratio * v_ratio;
        let duration_ns = duration_ps / 1.0e3;
        let event_pj = act.buffer_writes as f64 * p.buffer_write_pj
            + act.buffer_reads as f64 * p.buffer_read_pj
            + act.crossbar_traversals as f64 * p.crossbar_pj
            + act.vc_allocations as f64 * p.vc_alloc_pj
            + act.switch_allocations as f64 * p.sw_alloc_pj
            + act.link_flits as f64 * p.link_pj
            + act.ejected_flits as f64 * p.eject_pj;
        let f_ratio = f.as_hz() / p.nominal_frequency_hz;
        let clock_pj = p.clock_tree_mw * f_ratio * v2 * duration_ns;
        let leak_pj = p.leakage_mw * v_ratio.powf(p.leakage_voltage_exponent) * duration_ns;
        assert_eq!(e.dynamic_pj.to_bits(), (event_pj * v2 + clock_pj).to_bits());
        assert_eq!(e.static_pj.to_bits(), leak_pj.to_bits());
    }

    #[test]
    fn break_even_time_repays_one_transition_pair() {
        let model = RouterPowerModel::new();
        let f = Hertz::from_ghz(1.0);
        let vdd = Volts::new(0.9);
        let be_ps = model.break_even_ps(f, vdd);
        assert!(be_ps > 0.0 && be_ps.is_finite());
        // Staying gated exactly the break-even time saves exactly the
        // transition energy.
        let saved = model.gated_saving_mw(f, vdd) * (be_ps / 1.0e3);
        assert!((saved - model.transition_energy_pj(1, 1, vdd)).abs() < 1e-9);
        // At the nominal corner the calibration lands in the tens of
        // nanoseconds — tens of cycles at 1 GHz, a plausible hardware scale.
        assert!(be_ps > 5.0e3 && be_ps < 2.0e5, "break-even {be_ps} ps out of range");
        // Slower, lower-voltage corners save less per nanosecond, so the
        // break-even time stretches.
        let lo = Hertz::from_mhz(333.0);
        assert!(model.break_even_ps(lo, Volts::new(0.56)) > be_ps);
    }

    #[test]
    #[should_panic(expected = "positive interval")]
    fn zero_interval_power_panics() {
        let model = RouterPowerModel::new();
        let _ = model.router_power_mw(
            &RouterActivity::new(),
            Hertz::from_ghz(1.0),
            Volts::new(0.9),
            0.0,
        );
    }
}
